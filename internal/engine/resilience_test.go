package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/faultinject"
	"xamdb/internal/physical"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
)

const titlesXML = `<title>Data on the Web</title><title>The Syntactic Web</title>`

// planView pulls the view name out of a plan rendering like "scan(v1)".
func planView(t *testing.T, plan string, candidates ...string) string {
	t.Helper()
	for _, c := range candidates {
		if strings.Contains(plan, c) {
			return c
		}
	}
	t.Fatalf("plan %q names none of %v", plan, candidates)
	return ""
}

// TestFallbackToNextBestRewriting kills the extent of the chosen plan's
// view and checks the query is still answered — by the other view, with
// the degradation on record (acceptance (a), first cascade step).
func TestFallbackToNextBestRewriting(t *testing.T) {
	e := newEngine(t)
	for _, v := range []string{"v1", "v2"} {
		if err := e.RegisterView("bib.xml", v, `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	chosen := planView(t, rep.Plans[0], "v1", "v2")
	other := map[string]string{"v1": "v2", "v2": "v1"}[chosen]
	killExtentForTest(t, e, "bib.xml", chosen)

	got, rep2, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML {
		t.Fatalf("degraded result wrong: %q", got)
	}
	if !strings.Contains(rep2.Plans[0], other) {
		t.Fatalf("want next-best rewriting over %s, got plan %s", other, rep2.Plans[0])
	}
	if !rep2.Degraded() || !strings.Contains(rep2.Degradations[0].Plan, chosen) {
		t.Fatalf("degradation of %s not recorded: %+v", chosen, rep2.Degradations)
	}
	if !strings.Contains(rep2.String(), "degraded") {
		t.Fatalf("report rendering must surface the degradation:\n%s", rep2)
	}
}

// TestFallbackToBaseScan kills every extent and checks the cascade bottoms
// out at direct evaluation with the right answer (acceptance (a), floor).
func TestFallbackToBaseScan(t *testing.T) {
	for _, physical := range []bool{false, true} {
		e := newEngine(t)
		e.UsePhysical = physical
		if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
			t.Fatal(err)
		}
		killExtentForTest(t, e, "bib.xml", "vt")
		got, rep, err := e.Query(`doc("bib.xml")//book/title`)
		if err != nil {
			t.Fatalf("physical=%v: %v", physical, err)
		}
		if got != titlesXML {
			t.Fatalf("physical=%v: degraded result wrong: %q", physical, got)
		}
		if !strings.Contains(rep.Plans[0], "base scan") || !rep.Degraded() {
			t.Fatalf("physical=%v: want recorded fallback to base scan, got %s", physical, rep)
		}
	}
}

// TestShapeMismatchDegrades poisons an extent with a wrong-schema relation:
// the plan fails at execution and the query degrades instead of erroring.
func TestShapeMismatchDegrades(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	bogus := algebra.NewRelation(&algebra.Schema{Attrs: []algebra.Attr{{Name: "wrong"}}})
	bogus.Add(algebra.Tuple{algebra.S("junk")})
	poisonExtentForTest(t, e, "bib.xml", "vt", bogus)
	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML || !rep.Degraded() {
		t.Fatalf("want degraded-but-correct answer, got %q, report %s", got, rep)
	}
}

// TestOperatorPanicRecovered injects a panic at the physical scan site and
// a nil extent into the logical path: both are recovered into degradations,
// never propagated (acceptance (b)).
func TestOperatorPanicRecovered(t *testing.T) {
	t.Run("injected", func(t *testing.T) {
		e := newEngine(t)
		e.UsePhysical = true
		if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(rewrite.SiteCompileScan, faultinject.Fault{PanicWith: "iterator bug"})
		t.Cleanup(faultinject.Reset)
		got, rep, err := e.Query(`doc("bib.xml")//book/title`)
		if err != nil {
			t.Fatal(err)
		}
		if got != titlesXML {
			t.Fatalf("result after recovered panic: %q", got)
		}
		if !rep.Degraded() || !strings.Contains(rep.Degradations[0].Err, "iterator bug") {
			t.Fatalf("panic must be recorded as a degradation: %+v", rep.Degradations)
		}
	})
	t.Run("nil extent", func(t *testing.T) {
		e := newEngine(t)
		if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
		if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
			t.Fatal(err)
		}
		killExtentForTest(t, e, "bib.xml", "vt")
		got, rep, err := e.Query(`doc("bib.xml")//book/title`)
		if err != nil {
			t.Fatal(err)
		}
		if got != titlesXML || !rep.Degraded() {
			t.Fatalf("want degraded-but-correct answer, got %q, report %s", got, rep)
		}
	})
}

// TestNoFallbackSurfacesPlanFailure: with FallbackToBase off, a failed
// cascade must error rather than silently answer from the document.
func TestNoFallbackSurfacesPlanFailure(t *testing.T) {
	e := newEngine(t)
	e.FallbackToBase = false
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	killExtentForTest(t, e, "bib.xml", "vt")
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err == nil {
		t.Fatal("exhausted cascade without fallback must error")
	}
}

// TestQueryContextExpired checks an already-dead context aborts the query
// with the context's error and without touching the cascade (acceptance (c)).
func TestQueryContextExpired(t *testing.T) {
	for _, physical := range []bool{false, true} {
		e := newEngine(t)
		e.UsePhysical = physical
		if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		_, _, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("physical=%v: want DeadlineExceeded, got %v", physical, err)
		}
	}
}

// TestQueryTimeoutField checks the per-engine timeout knob produces a
// deadline error on its own.
func TestQueryTimeoutField(t *testing.T) {
	e := newEngine(t)
	e.QueryTimeout = time.Nanosecond
	_, _, err := e.Query(`doc("bib.xml")//book/title`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from QueryTimeout, got %v", err)
	}
	e.QueryTimeout = time.Minute
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatalf("roomy timeout must not fire: %v", err)
	}
}

// TestCancellationDoesNotDegrade: a cancelled physical plan must abort the
// query, not fall back to a base scan that would burn the remaining budget.
func TestCancellationDoesNotDegrade(t *testing.T) {
	e := newEngine(t)
	e.UsePhysical = true
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	// Warm the rewriter under a live context so planning succeeds first.
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, rep, err := e.QueryContext(ctx, `doc("bib.xml")//book/title`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v (out=%q, rep=%v)", err, out, rep)
	}
}

func TestRegisterViewDuplicateRejected(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "v", `// book{id}`); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterView("bib.xml", "v", `// author{id}`); err == nil {
		t.Fatal("duplicate view name must be rejected")
	}
	// Same name on a different document stays legal.
	if err := e.LoadDocument("other.xml", `<a><b/></a>`); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterView("other.xml", "v", `// b{id}`); err != nil {
		t.Fatalf("same view name on another document must be fine: %v", err)
	}
}

func TestRegisterStoreDuplicateRejected(t *testing.T) {
	e := newEngine(t)
	st, err := storage.TagPartitioned(e.Document("bib.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterStore("bib.xml", st); err != nil {
		t.Fatal(err)
	}
	before := viewCountForTest(t, e, "bib.xml")
	if err := e.RegisterStore("bib.xml", st); err == nil {
		t.Fatal("re-registering the same store must be rejected")
	}
	if got := viewCountForTest(t, e, "bib.xml"); got != before {
		t.Fatalf("rejected store must register nothing: %d views, want %d", got, before)
	}
}

// TestQuotaKillAbortsNotDegrades: a quota-exceeded error out of the
// rewriting search must abort the query, never enter the fallback cascade
// — degrading would spend more of a budget that is already exhausted
// (budgetcharge rule 2 regression). A generic planner failure at the same
// site still degrades to the base scan.
func TestQuotaKillAbortsNotDegrades(t *testing.T) {
	t.Run("quota error aborts", func(t *testing.T) {
		e := newEngine(t)
		if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(SiteRewrite, faultinject.Fault{
			Err: fmt.Errorf("rewriting search: %w", physical.ErrQuotaExceeded),
		})
		t.Cleanup(faultinject.Reset)
		_, rep, err := e.Query(`doc("bib.xml")//book/title`)
		if !errors.Is(err, physical.ErrQuotaExceeded) {
			t.Fatalf("quota-killed query must abort with ErrQuotaExceeded, got err=%v rep=%v", err, rep)
		}
	})
	t.Run("generic planner failure degrades", func(t *testing.T) {
		e := newEngine(t)
		if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
		faultinject.Arm(SiteRewrite, faultinject.Fault{Err: errors.New("planner exploded")})
		t.Cleanup(faultinject.Reset)
		got, rep, err := e.Query(`doc("bib.xml")//book/title`)
		if err != nil {
			t.Fatal(err)
		}
		if got != titlesXML || !rep.Degraded() {
			t.Fatalf("generic planner failure must degrade to the base scan: got %q, report %s", got, rep)
		}
	})
}
