package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xamdb/internal/faultinject"
	"xamdb/internal/rewrite"
)

// TestMaterializeFailureRetried is the regression test for the rewriterFor
// bug: a failed materialization must degrade the query AND be retried on
// the next one — never cached as a rewriter whose views have no extents.
func TestMaterializeFailureRetried(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(rewrite.SiteMaterializeView, faultinject.Fault{})
	t.Cleanup(faultinject.Reset)

	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML {
		t.Fatalf("degraded result wrong: %q", got)
	}
	if !rep.Degraded() || !strings.Contains(rep.Degradations[0].Plan, "materialization") {
		t.Fatalf("materialization failure must be recorded as a degradation: %+v", rep.Degradations)
	}
	if extentBuiltForTest(t, e, "bib.xml", "vt") {
		t.Fatal("failed materialization must not mark the view's extent built")
	}

	// Heal the fault: the next query must retry materialization and answer
	// from the view, not silently keep degrading to the base scan forever.
	faultinject.Reset()
	got, rep, err = e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML {
		t.Fatalf("healed result wrong: %q", got)
	}
	if rep.Degraded() {
		t.Fatalf("healed query must not degrade: %+v", rep.Degradations)
	}
	if !strings.Contains(rep.Plans[0], "vt") {
		t.Fatalf("healed query must use the view's plan, got %s", rep.Plans[0])
	}
}

// TestPartialReportTolerated is the regression test for the Report.String
// panic: a pattern recorded without its plan (query aborted mid-way) must
// render, and QueryContext must hand the partial report back with the error.
func TestPartialReportTolerated(t *testing.T) {
	partial := &Report{Patterns: []string{"p1", "p2"}, Plans: []string{"scan(v)"}}
	s := partial.String()
	if !strings.Contains(s, "scan(v)") || !strings.Contains(s, "did not complete") {
		t.Fatalf("partial report rendering wrong:\n%s", s)
	}

	e := newEngine(t)
	e.FallbackToBase = false // no views, no fallback: the pattern cannot be answered
	out, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err == nil {
		t.Fatalf("query must fail, got %q", out)
	}
	if rep == nil {
		t.Fatal("failed query must still return the partial report")
	}
	if len(rep.Patterns) != 1 || len(rep.Plans) != 0 {
		t.Fatalf("partial report shape: patterns=%d plans=%d", len(rep.Patterns), len(rep.Plans))
	}
	if s := rep.String(); !strings.Contains(s, "pattern 1") {
		t.Fatalf("partial report must render:\n%s", s)
	}
}

// TestExplainDoesNotMaterialize is the regression test for the Explain
// promise: planning "without executing" must not evaluate view extents over
// the document.
func TestExplainDoesNotMaterialize(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	// Arm the materialization fault: if Explain materialized, it would fail.
	faultinject.Arm(rewrite.SiteMaterializeView, faultinject.Fault{})
	t.Cleanup(faultinject.Reset)
	rep, err := e.Explain(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatalf("explain must be read-only and unaffected by materialization faults: %v", err)
	}
	if !strings.Contains(rep.Plans[0], "vt") {
		t.Fatalf("explain must still find the view plan: %s", rep.Plans[0])
	}
	if n := builtExtentCountForTest(t, e, "bib.xml"); n != 0 {
		t.Fatalf("explain must not materialize: %d extents built", n)
	}
	if faultinject.Hits(rewrite.SiteMaterializeView) != 0 {
		t.Fatal("explain must never reach the materialization path")
	}
}

// TestDegradationMetricsMatchReport asserts the engine's counters agree
// with the report's degradation telemetry after injected plan failures.
func TestDegradationMetricsMatchReport(t *testing.T) {
	e := newEngine(t)
	for _, v := range []string{"v1", "v2"} {
		if err := e.RegisterView("bib.xml", v, `// book(/ title{cont})`); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	// Kill both extents: the next query degrades twice, down to the base scan.
	killExtentForTest(t, e, "bib.xml", "v1")
	killExtentForTest(t, e, "bib.xml", "v2")
	_, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() {
		t.Fatal("query over empty extents must degrade")
	}
	snap := e.Metrics.Snapshot()
	if got := snap.Counters["engine.degradations"]; got != int64(len(rep.Degradations)) {
		t.Fatalf("engine.degradations = %d, want %d (report)", got, len(rep.Degradations))
	}
	if got := snap.Counters["engine.queries"]; got != 2 {
		t.Fatalf("engine.queries = %d, want 2", got)
	}
	if got := snap.Counters["engine.queries_degraded"]; got != 1 {
		t.Fatalf("engine.queries_degraded = %d, want 1", got)
	}
	if got := snap.Counters["engine.base_scans"]; got != 1 {
		t.Fatalf("engine.base_scans = %d, want 1", got)
	}
	fd := snap.Histograms["engine.fallback_depth"]
	if fd.Count != 2 || fd.MaxNS != int64(len(rep.Degradations)) {
		t.Fatalf("fallback_depth histogram: %+v, want count=2 max=%d", fd, len(rep.Degradations))
	}
	if snap.Histograms["engine.query_ns"].Count != 2 {
		t.Fatalf("query latency histogram must record both queries: %+v", snap.Histograms["engine.query_ns"])
	}
}

// TestTraceAttached checks every query carries a span tree covering the
// phases of the pipeline.
func TestTraceAttached(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil {
		t.Fatal("report must carry a trace")
	}
	s := rep.Trace.String()
	for _, phase := range []string{"parse", "extract", "pattern[0]", "materialize", "rewrite", "execute"} {
		if !strings.Contains(s, phase) {
			t.Fatalf("trace missing %q span:\n%s", phase, s)
		}
	}
	if _, err := rep.Trace.JSON(); err != nil {
		t.Fatalf("trace JSON export: %v", err)
	}
}

// TestAnalyzeOperatorTree checks EXPLAIN ANALYZE: the result matches plain
// execution and the report carries an operator tree with rows and timings.
func TestAnalyzeOperatorTree(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	want, _, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	got, rep, err := e.Analyze(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("analyze result differs: %q vs %q", got, want)
	}
	if len(rep.Ops) != 1 || rep.Ops[0] == nil {
		t.Fatalf("analyze must attach one operator tree per pattern: %+v", rep.Ops)
	}
	if rep.Ops[0].TotalRows() == 0 {
		t.Fatalf("root operator must report rows: %+v", rep.Ops[0])
	}
	s := rep.AnalyzeString()
	if !strings.Contains(s, "rows=") || !strings.Contains(s, "time=") || !strings.Contains(s, "scan(vt") {
		t.Fatalf("analyze rendering must annotate operators with rows/time:\n%s", s)
	}
	// The base-scan fallback also reports a (synthetic) operator node.
	e2 := newEngine(t)
	_, rep2, err := e2.Analyze(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Ops) != 1 || rep2.Ops[0] == nil || rep2.Ops[0].Rows == 0 {
		t.Fatalf("base-scan analyze must still report rows: %+v", rep2.Ops)
	}
}

// TestConcurrentQueriesAndRegistration is the -race stress test: many
// goroutines issue queries while views are registered mid-flight and
// another goroutine plans with Explain. Correctness bar: no data race, no
// error, every result identical.
func TestConcurrentQueriesAndRegistration(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "v0", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker+perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				got, _, err := e.QueryContext(context.Background(), `doc("bib.xml")//book/title`)
				if err != nil {
					errc <- err
					return
				}
				if got != titlesXML {
					errc <- fmt.Errorf("concurrent result wrong: %q", got)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // mutate the view set mid-flight
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			if err := e.RegisterView("bib.xml", fmt.Sprintf("vx%d", i), `// book(/ author{cont})`); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // plan concurrently with execution and registration
		defer wg.Done()
		for i := 0; i < perWorker; i++ {
			if _, err := e.ExplainContext(context.Background(), `doc("bib.xml")//book/title`); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := e.Metrics.Snapshot().Counters["engine.queries"]; got != workers*perWorker {
		t.Fatalf("engine.queries = %d, want %d", got, workers*perWorker)
	}
}

// BenchmarkConcurrentQueries drives QueryContext from GOMAXPROCS goroutines
// over a view-backed catalog — the concurrency baseline the ROADMAP's perf
// targets are measured against.
func BenchmarkConcurrentQueries(b *testing.B) {
	e := New()
	if err := e.LoadDocument("bib.xml", bibXML); err != nil {
		b.Fatal(err)
	}
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		b.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		b.Fatal(err) // warm the rewriter and extents
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := e.QueryContext(context.Background(), `doc("bib.xml")//book/title`); err != nil {
				b.Fatal(err)
			}
		}
	})
}
