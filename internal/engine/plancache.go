package engine

import (
	"container/list"
	"sync"

	"xamdb/internal/rewrite"
)

// planCache is a bounded LRU of compiled rewritings, keyed by the query
// pattern's canonical print (xam.Pattern.CacheKey). One cache lives inside
// each planEnv snapshot, so view-set changes invalidate it wholesale: the
// registration path publishes a fresh snapshot with a fresh (empty) cache,
// and a stale rewriting can never be served against a newer view catalog.
//
// Cached values are the rewriter's output slices; they are treated as
// immutable by every consumer (the engine only reads plans and executes
// them against per-query environments), so a hit returns the shared slice
// without copying.
type planCache struct {
	mu    sync.Mutex
	cap   int
	items map[string]*list.Element
	order *list.List // front = most recently used
}

type planCacheEntry struct {
	key   string
	plans []*rewrite.Rewriting
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		cap:   capacity,
		items: make(map[string]*list.Element, capacity),
		order: list.New(),
	}
}

// get returns the cached rewritings for key and whether they were present,
// promoting the entry to most-recently-used.
func (c *planCache) get(key string) ([]*rewrite.Rewriting, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planCacheEntry).plans, true
}

// put stores the rewritings for key and reports whether an older entry was
// evicted to make room. Re-putting an existing key refreshes it in place.
func (c *planCache) put(key string, plans []*rewrite.Rewriting) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*planCacheEntry).plans = plans
		c.order.MoveToFront(el)
		return false
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.items, oldest.Value.(*planCacheEntry).key)
			evicted = true
		}
	}
	c.items[key] = c.order.PushFront(&planCacheEntry{key: key, plans: plans})
	return evicted
}

// len returns the number of cached entries.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
