package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"xamdb/internal/storage"
)

// catalog is the persistent form of an engine: documents by their XML
// serialization, views by their XAM text. Extents rematerialize on load —
// the catalog is the logical description, exactly the thesis's point that
// the XAM set *is* the storage description.
type catalog struct {
	Docs []catalogDoc
}

type catalogDoc struct {
	Name  string
	XML   string
	Views []catalogView
}

type catalogView struct {
	Name    string
	Pattern string
}

// Save writes the engine's catalog (documents and registered view XAMs).
func (e *Engine) Save(w io.Writer) error {
	e.mu.RLock()
	var cat catalog
	for name, st := range e.docs {
		cd := catalogDoc{Name: name, XML: st.doc.Serialize()}
		for _, v := range st.plan().views {
			cd.Views = append(cd.Views, catalogView{Name: v.Name, Pattern: v.Pattern.String()})
		}
		cat.Docs = append(cat.Docs, cd)
	}
	e.mu.RUnlock()
	// Stable order for reproducible files.
	for i := 1; i < len(cat.Docs); i++ {
		for j := i; j > 0 && cat.Docs[j].Name < cat.Docs[j-1].Name; j-- {
			cat.Docs[j], cat.Docs[j-1] = cat.Docs[j-1], cat.Docs[j]
		}
	}
	if err := gob.NewEncoder(w).Encode(cat); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	return nil
}

// Load reads a catalog written by Save into a fresh engine; summaries are
// rebuilt and view extents rematerialize lazily on first use.
func Load(r io.Reader) (*Engine, error) {
	var cat catalog
	if err := gob.NewDecoder(r).Decode(&cat); err != nil {
		return nil, fmt.Errorf("engine: load: %w", err)
	}
	e := New()
	for _, cd := range cat.Docs {
		if err := e.LoadDocument(cd.Name, cd.XML); err != nil {
			return nil, fmt.Errorf("engine: load %s: %w", cd.Name, err)
		}
		for _, cv := range cd.Views {
			if err := e.RegisterView(cd.Name, cv.Name, cv.Pattern); err != nil {
				return nil, fmt.Errorf("engine: load view %s: %w", cv.Name, err)
			}
		}
	}
	return e, nil
}

// SaveFile / LoadFile persist the catalog on disk. SaveFile writes through
// a temp file + rename so a crash mid-save never leaves a torn catalog.
func (e *Engine) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := e.Save(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // committed: the deferred cleanup must not remove it
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// LoadFile loads a catalog file.
func LoadFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// SaveStoreFile materializes a named storage scheme of a document and writes
// it next to the catalog (module extents included), using the storage
// package's checksummed binary format and atomic temp-file + rename write.
func SaveStoreFile(dir string, st *storage.Store) error {
	return storage.SaveStoreFile(filepath.Join(dir, st.Name+".store"), st)
}
