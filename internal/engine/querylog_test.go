package engine

import (
	"strings"
	"testing"
	"time"

	"xamdb/internal/faultinject"
	"xamdb/internal/obs"
	"xamdb/internal/rewrite"
)

// TestQueryLogRecordsEveryQuery checks the log's core contract: every
// query lands in the log — clean, degraded and failed alike — with its
// fingerprint, plans, cache outcome, row count and phase latencies.
func TestQueryLogRecordsEveryQuery(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("`); err == nil {
		t.Fatal("parse error expected")
	}
	recs := e.QueryLog.Recent(0)
	if len(recs) != 3 {
		t.Fatalf("log must record every query: %d records", len(recs))
	}
	failed, warm, cold := recs[0], recs[1], recs[2]
	if failed.Error == "" || !strings.HasPrefix(failed.Fingerprint, "src-") {
		t.Fatalf("failed query must carry error and source fingerprint: %+v", failed)
	}
	if cold.Fingerprint == "" || cold.Fingerprint != warm.Fingerprint {
		t.Fatalf("same pattern must share a fingerprint: %q vs %q", cold.Fingerprint, warm.Fingerprint)
	}
	if cold.CacheMisses != 1 || warm.CacheHits != 1 {
		t.Fatalf("cache outcome per query: cold=%+v warm=%+v", cold, warm)
	}
	if len(cold.Plans) != 1 || !strings.Contains(cold.Plans[0], "vt") {
		t.Fatalf("record must name the chosen plan: %+v", cold.Plans)
	}
	if cold.RowsOut != 2 {
		t.Fatalf("rows out = %d, want 2", cold.RowsOut)
	}
	if cold.PhasesNS["parse"] == 0 || cold.PhasesNS["execute"] == 0 {
		t.Fatalf("per-phase latencies missing: %+v", cold.PhasesNS)
	}
	if cold.PhasesNS["materialize"] == 0 {
		t.Fatalf("cold query must charge materialize time: %+v", cold.PhasesNS)
	}

	// Degraded queries are logged with their degradation count.
	killExtentForTest(t, e, "bib.xml", "vt")
	if _, rep, err := e.Query(`doc("bib.xml")//book/title`); err != nil || !rep.Degraded() {
		t.Fatalf("expected degraded query: err=%v", err)
	}
	if rec := e.QueryLog.Recent(1)[0]; rec.Degraded != 1 {
		t.Fatalf("degradations must land in the record: %+v", rec)
	}
}

// TestSlowQueryCapture checks the slow-query pipeline: a threshold-
// crossing query retains its full trace; because its fingerprint is noted,
// the recurrence runs instrumented and retains operator stats too.
func TestSlowQueryCapture(t *testing.T) {
	e := newEngine(t)
	e.QueryLog = obs.NewQueryLog(16, time.Nanosecond) // everything is slow
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, rep, err := e.Query(`doc("bib.xml")//book/title`); err != nil || len(rep.Ops) != 0 {
		t.Fatalf("first run must not be instrumented: err=%v ops=%d", err, len(rep.Ops))
	}
	first := e.QueryLog.Slow(1)[0]
	if len(first.Trace) == 0 {
		t.Fatalf("slow query must retain its trace: %+v", first)
	}
	if len(first.Ops) != 0 {
		t.Fatalf("first slow occurrence has no operator stats yet: %+v", first)
	}

	out, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if out != titlesXML {
		t.Fatalf("instrumented recurrence must return the same result: %q", out)
	}
	if len(rep.Ops) != 1 || rep.Ops[0] == nil {
		t.Fatalf("recurrence of a slow fingerprint must run instrumented: %+v", rep.Ops)
	}
	second := e.QueryLog.Slow(1)[0]
	if len(second.Trace) == 0 || len(second.Ops) == 0 {
		t.Fatalf("recurring slow query must retain trace and operator stats: trace=%d ops=%d",
			len(second.Trace), len(second.Ops))
	}

	// A fast threshold never fires: no trace retention, no instrumentation.
	e2 := newEngine(t)
	e2.QueryLog = obs.NewQueryLog(16, time.Hour)
	if _, _, err := e2.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if rec := e2.QueryLog.Recent(1)[0]; rec.Slow || len(rec.Trace) != 0 {
		t.Fatalf("fast query must not retain a trace: %+v", rec)
	}
}

// TestMaterializeSpanNamed is the regression test for the anonymous cold
// materialize span: the cold build must carry the view's name in the span
// tree and in the per-view materialization counter.
func TestMaterializeSpanNamed(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Trace.String(); !strings.Contains(s, "materialize(vt)") {
		t.Fatalf("cold build must open a span named after the view:\n%s", s)
	}
	snap := e.Metrics.Snapshot()
	if got := snap.Counters[MetricViewMaterializedPrefix+"vt"]; got != 1 {
		t.Fatalf("per-view materialization counter = %d, want 1", got)
	}
	// Warm query: no cold build, no named span.
	_, rep, err = e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Trace.String(); strings.Contains(s, "materialize(vt)") {
		t.Fatalf("warm query must not rebuild the extent:\n%s", s)
	}
}

// TestStateGaugesAndCatalog checks the scrape-time planning-state gauges
// and the catalog introspection across the extent lifecycle: unbuilt →
// failed → built.
func TestStateGaugesAndCatalog(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	assertExtent := func(want ExtentState) {
		t.Helper()
		cat := e.Catalog()
		if len(cat) != 1 || len(cat[0].Views) != 1 || cat[0].Views[0].Extent != want {
			t.Fatalf("catalog extent state: %+v, want %s", cat, want)
		}
	}
	gauge := func(name string) int64 {
		t.Helper()
		e.SyncStateGauges()
		return e.Metrics.Snapshot().Gauges[name]
	}
	assertExtent(ExtentUnbuilt)
	if gauge(MetricViewExtentsUnbuilt) != 1 || gauge(MetricViewExtentsBuilt) != 0 {
		t.Fatal("fresh view must gauge as unbuilt")
	}

	faultinject.Arm(rewrite.SiteMaterializeView, faultinject.Fault{})
	if _, rep, err := e.Query(`doc("bib.xml")//book/title`); err != nil || !rep.Degraded() {
		t.Fatalf("materialization fault must degrade: err=%v", err)
	}
	faultinject.Reset()
	assertExtent(ExtentFailed)
	if gauge(MetricViewExtentsFailed) != 1 {
		t.Fatal("failed materialization must gauge as failed")
	}

	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	assertExtent(ExtentBuilt)
	if gauge(MetricViewExtentsBuilt) != 1 || gauge(MetricViewExtentsFailed) != 0 {
		t.Fatal("healed build must gauge as built")
	}
	if gauge(MetricPlanCacheSize) != 1 {
		t.Fatalf("plan cache gauge = %d, want 1", gauge(MetricPlanCacheSize))
	}

	stats := e.PlanCacheStats()
	if len(stats) != 1 || stats[0].Entries != 1 || stats[0].Capacity != DefaultPlanCacheSize {
		t.Fatalf("plan cache stats: %+v", stats)
	}
	if stats[0].Epoch != 1 {
		t.Fatalf("epoch = %d, want 1 after one registration", stats[0].Epoch)
	}
}
