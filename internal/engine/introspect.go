// Introspection views of the engine's planning state, consumed by the
// monitoring surface (internal/serve's /debug/catalog and /debug/plancache)
// and by uload. Everything here reads the copy-on-write planning snapshots
// lock-free — a scrape never blocks a query.
package engine

import (
	"sort"

	"xamdb/internal/obs"
)

// ExtentState describes how one view's extent is currently backed.
type ExtentState string

const (
	// ExtentStore: pre-materialized by the storage layer at registration.
	ExtentStore ExtentState = "store"
	// ExtentIndex: R-marked index pattern with no standalone extent.
	ExtentIndex ExtentState = "index"
	// ExtentUnbuilt: lazily materialized, not yet referenced by a plan.
	ExtentUnbuilt ExtentState = "unbuilt"
	// ExtentBuilt: materialized and serving plans.
	ExtentBuilt ExtentState = "built"
	// ExtentFailed: the last materialization attempt failed; the build is
	// retried the next time a chosen plan references the view.
	ExtentFailed ExtentState = "failed"
)

// CatalogView is one registered view (or store module) of a document.
type CatalogView struct {
	Name    string      `json:"name"`
	Pattern string      `json:"pattern"`
	Extent  ExtentState `json:"extent"`
}

// CatalogDoc is the monitoring view of one registered document: its size,
// planning epoch and view catalog with per-view extent state.
type CatalogDoc struct {
	Doc          string        `json:"doc"`
	Nodes        int           `json:"nodes"`
	SummaryPaths int           `json:"summary_paths"`
	Epoch        uint64        `json:"epoch"`
	Views        []CatalogView `json:"views"`
}

// Catalog returns every registered document with its current planning
// snapshot's view catalog, sorted by document and view name.
func (e *Engine) Catalog() []CatalogDoc {
	e.mu.RLock()
	states := make(map[string]*docState, len(e.docs))
	for name, st := range e.docs {
		states[name] = st
	}
	e.mu.RUnlock()

	out := make([]CatalogDoc, 0, len(states))
	for name, st := range states {
		pe := st.plan()
		doc := CatalogDoc{
			Doc:          name,
			Nodes:        st.doc.Size(),
			SummaryPaths: st.summary.Size(),
			Epoch:        pe.epoch,
			Views:        make([]CatalogView, 0, len(pe.views)),
		}
		for _, v := range pe.views {
			cv := CatalogView{Name: v.Name, Pattern: v.Pattern.String()}
			switch x, lazy := pe.extents[v.Name]; {
			case lazy:
				switch x.state.Load() {
				case xsBuilt:
					cv.Extent = ExtentBuilt
				case xsFailed:
					cv.Extent = ExtentFailed
				default:
					cv.Extent = ExtentUnbuilt
				}
			default:
				if _, fromStore := pe.baseEnv[v.Name]; fromStore {
					cv.Extent = ExtentStore
				} else {
					cv.Extent = ExtentIndex
				}
			}
			doc.Views = append(doc.Views, cv)
		}
		sort.Slice(doc.Views, func(i, j int) bool { return doc.Views[i].Name < doc.Views[j].Name })
		out = append(out, doc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}

// RegisteredViews returns the names of every registered view (and store
// module) across all documents, sorted and deduplicated — the catalog the
// advisor checks for views that never appear in the workload attribution.
func (e *Engine) RegisteredViews() []string {
	seen := map[string]bool{}
	var names []string
	for _, doc := range e.Catalog() {
		for _, v := range doc.Views {
			if !seen[v.Name] {
				seen[v.Name] = true
				names = append(names, v.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}

// Advise runs the view advisor over the engine's workload observatory,
// supplying the registered-view catalog when the options leave it empty.
// Returns an empty report when the observatory is disabled (nil Workload).
func (e *Engine) Advise(opts obs.AdvisorOptions) *obs.AdvisorReport {
	if len(opts.RegisteredViews) == 0 {
		opts.RegisteredViews = e.RegisteredViews()
	}
	return e.Workload.Snapshot().Advise(opts)
}

// PlanCacheStat is the monitoring view of one document's rewriting cache.
type PlanCacheStat struct {
	Doc      string `json:"doc"`
	Epoch    uint64 `json:"epoch"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
	Disabled bool   `json:"disabled,omitempty"`
}

// PlanCacheStats returns per-document rewriting-cache occupancy, sorted by
// document name. Hit/miss/eviction totals live in the metrics registry
// (MetricPlanCacheHits etc.).
func (e *Engine) PlanCacheStats() []PlanCacheStat {
	e.mu.RLock()
	states := make(map[string]*docState, len(e.docs))
	for name, st := range e.docs {
		states[name] = st
	}
	e.mu.RUnlock()

	out := make([]PlanCacheStat, 0, len(states))
	for name, st := range states {
		pe := st.plan()
		stat := PlanCacheStat{Doc: name, Epoch: pe.epoch}
		if pe.cache == nil || e.Options.DisablePlanCache {
			stat.Disabled = true
		} else {
			stat.Entries = pe.cache.len()
			stat.Capacity = pe.cache.cap
		}
		out = append(out, stat)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Doc < out[j].Doc })
	return out
}
