package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"xamdb/internal/obs"
	"xamdb/internal/physical"
	"xamdb/internal/xam"
)

// maxLoggedQueryLen bounds the query text retained per log record; the
// fingerprint identifies the query exactly even when the text is cut.
const maxLoggedQueryLen = 256

// fingerprintPatterns derives the query's fingerprint from its extracted
// patterns' canonical cache keys (xam.Pattern.CacheKey), so syntactic
// variants of the same access pattern share a fingerprint — the identity
// the slow-query capture and the log's aggregation views key on.
func fingerprintPatterns(pats []*xam.Pattern) string {
	h := fnv.New64a()
	for _, p := range pats {
		_, _ = io.WriteString(h, p.CacheKey())
		_, _ = h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// fingerprintSource hashes the raw query text — the fallback identity for
// queries that fail before pattern extraction.
func fingerprintSource(src string) string {
	h := fnv.New64a()
	_, _ = io.WriteString(h, src)
	return fmt.Sprintf("src-%016x", h.Sum64())
}

// instrumentSlow reports whether the fingerprint previously crossed the
// slow-query threshold, in which case the query runs instrumented so its
// log record retains EXPLAIN ANALYZE operator stats.
func (e *Engine) instrumentSlow(fp string) bool {
	if e.QueryLog.SlowThreshold() <= 0 {
		return false
	}
	_, ok := e.slowFPs.Load(fp)
	return ok
}

// noteSlowFingerprint marks a fingerprint for instrumentation on its next
// run. The set is bounded; once full, new slow fingerprints are only
// captured with their trace.
func (e *Engine) noteSlowFingerprint(fp string) {
	if e.slowFPCount.Load() >= maxSlowFingerprints {
		return
	}
	if _, loaded := e.slowFPs.LoadOrStore(fp, struct{}{}); !loaded {
		e.slowFPCount.Add(1)
	}
}

// queryOutcome classifies how a query ended, matching the admission layer's
// wire names so the query log is joinable with the admission counters.
func queryOutcome(qerr error) string {
	switch {
	case qerr == nil:
		return "served"
	case errors.Is(qerr, physical.ErrQuotaExceeded):
		return "quota_killed"
	case errors.Is(qerr, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(qerr, context.Canceled):
		return "cancelled"
	default:
		return "error"
	}
}

// logQuery appends one record to the engine's query log and folds it into
// the workload observatory — every query lands here, successful, degraded
// or failed. Slow queries additionally retain the full trace JSON and,
// when the run was instrumented, the EXPLAIN ANALYZE operator trees; their
// fingerprint is noted so the next recurrence runs instrumented. A nil
// QueryLog disables logging without disabling the workload fold-in (and
// vice versa for a nil Workload).
func (e *Engine) logQuery(src, fp string, start time.Time, dur time.Duration, rep *Report, rowsOut int64, qerr error) {
	lg := e.QueryLog
	if lg == nil && e.Workload == nil {
		return
	}
	query := src
	if len(query) > maxLoggedQueryLen {
		query = query[:maxLoggedQueryLen] + "…"
	}
	rec := obs.QueryRecord{
		TimeUnixNS:  start.UnixNano(),
		Fingerprint: fp,
		Query:       query,
		Plans:       rep.Plans,
		CacheHits:   rep.PlanCacheHits,
		CacheMisses: rep.PlanCacheMisses,
		Degraded:    len(rep.Degradations),
		RowsOut:     rowsOut,
		DurationNS:  int64(dur),
		Outcome:     queryOutcome(qerr),

		BaseScans:      rep.BaseScans,
		PredAbsorbed:   rep.PredAbsorbed,
		PredResidual:   rep.ResidualSelections,
		Batches:        rep.Batches,
		BatchFallbacks: rep.BatchFallbacks,
		Views:          rep.ViewUses(),
	}
	if qerr != nil {
		rec.Error = qerr.Error()
	}
	if rep.Trace != nil {
		if totals := rep.Trace.PhaseTotals(); len(totals) > 0 {
			rec.PhasesNS = make(map[string]int64, len(totals))
			for name, d := range totals {
				rec.PhasesNS[name] = int64(d)
			}
		}
	}
	// The workload table aggregates the lean record — before the slow-path
	// attachments, which are per-record diagnostics, not aggregates.
	e.Workload.Observe(rec)
	if lg.IsSlow(dur) {
		e.noteSlowFingerprint(fp)
		if rep.Trace != nil {
			if data, err := rep.Trace.JSON(); err == nil {
				rec.Trace = data
			}
		}
		if len(rep.Ops) > 0 {
			if data, err := json.Marshal(rep.Ops); err == nil {
				rec.Ops = data
			}
		}
	}
	lg.Record(rec)
}
