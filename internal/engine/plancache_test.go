package engine

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xamdb/internal/faultinject"
	"xamdb/internal/rewrite"
)

// TestPlanCacheWarmHit: the second identical query must be served from the
// rewriting cache — no second containment search — and the trace must show
// the cache consultation.
func TestPlanCacheWarmHit(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML || !strings.Contains(rep.Plans[0], "vt") {
		t.Fatalf("warm query answer wrong: %q plan %s", got, rep.Plans[0])
	}
	if !strings.Contains(rep.Trace.String(), "cache") {
		t.Fatalf("warm query trace must contain the cache span:\n%s", rep.Trace)
	}
	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.plan_cache_hits"] != 1 || snap.Counters["engine.plan_cache_misses"] != 1 {
		t.Fatalf("want 1 hit / 1 miss, got hits=%d misses=%d",
			snap.Counters["engine.plan_cache_hits"], snap.Counters["engine.plan_cache_misses"])
	}
	if n := snap.Histograms["engine.rewrite_ns"].Count; n != 1 {
		t.Fatalf("warm query must skip the containment search: rewrite_ns count=%d, want 1", n)
	}
	// Explain shares the cache with the query path.
	if _, err := e.Explain(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if got := e.Metrics.Snapshot().Counters["engine.plan_cache_hits"]; got != 2 {
		t.Fatalf("explain must hit the shared cache: hits=%d, want 2", got)
	}
}

// TestPlanCachePredicateKeySoundness is the cache-key soundness regression
// test for absorbed predicates: two queries identical except for the
// predicate constant must get distinct cache entries (the key includes the
// normalized φ), so the warm cache never serves the first constant's
// rewriting — with its baked-in residual selection — for the second. Both
// must still be answered from the value-storing view, never the base.
func TestPlanCachePredicateKeySoundness(t *testing.T) {
	e := New()
	const predBib = `<bib>
  <book><title>Data on the Web</title><year>1999</year></book>
  <book><title>The Syntactic Web</title><year>2002</year></book>
</bib>`
	if err := e.LoadDocument("pbib.xml", predBib); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterView("pbib.xml", "vy", `// book(/ title{cont}, / year{val})`); err != nil {
		t.Fatal(err)
	}
	got99, rep99, err := e.Query(`doc("pbib.xml")//book[year = "1999"]/title`)
	if err != nil {
		t.Fatal(err)
	}
	got02, rep02, err := e.Query(`doc("pbib.xml")//book[year = "2002"]/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got99 != `<title>Data on the Web</title>` || got02 != `<title>The Syntactic Web</title>` {
		t.Fatalf("predicate constants must select distinct rows:\n1999: %q\n2002: %q", got99, got02)
	}
	for i, rep := range []*Report{rep99, rep02} {
		if !strings.Contains(rep.Plans[0], "vy") {
			t.Fatalf("query %d must be answered from the view, got plan %s", i, rep.Plans[0])
		}
	}
	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.base_scans"] != 0 {
		t.Fatalf("absorbed predicates must not base-scan: base_scans=%d", snap.Counters["engine.base_scans"])
	}
	if snap.Counters["engine.plan_cache_hits"] != 0 || snap.Counters["engine.plan_cache_misses"] != 2 {
		t.Fatalf("distinct φ must yield distinct keys: hits=%d misses=%d",
			snap.Counters["engine.plan_cache_hits"], snap.Counters["engine.plan_cache_misses"])
	}
	// Re-running the first constant is a genuine warm hit and must still
	// return the 1999 rows, not the most recently cached rewriting.
	again, _, err := e.Query(`doc("pbib.xml")//book[year = "1999"]/title`)
	if err != nil {
		t.Fatal(err)
	}
	if again != got99 {
		t.Fatalf("warm re-run changed the answer: %q vs %q", again, got99)
	}
	if hits := e.Metrics.Snapshot().Counters["engine.plan_cache_hits"]; hits != 1 {
		t.Fatalf("identical predicate must hit the cache: hits=%d, want 1", hits)
	}
}

// TestPlanCacheInvalidatedByRegistration: registering or dropping a view
// publishes a new snapshot (epoch+1) with a fresh cache, so the next query
// replans instead of reusing a rewriting compiled over the old view set.
func TestPlanCacheInvalidatedByRegistration(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "v1", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	epoch0 := snapshotForTest(t, e, "bib.xml").epoch
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterView("bib.xml", "v2", `// book(/ author{cont})`); err != nil {
		t.Fatal(err)
	}
	if epoch := snapshotForTest(t, e, "bib.xml").epoch; epoch != epoch0+1 {
		t.Fatalf("registration must bump the epoch: %d -> %d", epoch0, epoch)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.plan_cache_misses"] != 2 || snap.Counters["engine.plan_cache_hits"] != 0 {
		t.Fatalf("registration must invalidate the cache: hits=%d misses=%d",
			snap.Counters["engine.plan_cache_hits"], snap.Counters["engine.plan_cache_misses"])
	}
}

// TestDropViewInvalidatesPlans: after DropView, a query that was answered
// from the view must replan — the cached rewriting referencing the dropped
// view must never be served.
func TestDropViewInvalidatesPlans(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	_, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Plans[0], "vt") {
		t.Fatalf("warm-up must use the view: %s", rep.Plans[0])
	}
	if err := e.DropView("bib.xml", "vt"); err != nil {
		t.Fatal(err)
	}
	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML {
		t.Fatalf("post-drop answer wrong: %q", got)
	}
	if strings.Contains(rep.Plans[0], "vt") || rep.Degraded() {
		t.Fatalf("dropped view must not appear in any served plan: %s (degradations %v)",
			rep.Plans[0], rep.Degradations)
	}
	if err := e.DropView("bib.xml", "vt"); err == nil {
		t.Fatal("dropping an unknown view must error")
	}
}

// TestPlanCacheDisabled: with the cache off every query replans and the
// cache counters stay silent.
func TestPlanCacheDisabled(t *testing.T) {
	e := newEngine(t)
	e.Options.DisablePlanCache = true
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil || got != titlesXML {
			t.Fatalf("query %d: %q, %v", i, got, err)
		}
	}
	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.plan_cache_hits"] != 0 || snap.Counters["engine.plan_cache_misses"] != 0 {
		t.Fatalf("disabled cache must not count: hits=%d misses=%d",
			snap.Counters["engine.plan_cache_hits"], snap.Counters["engine.plan_cache_misses"])
	}
	if n := snap.Histograms["engine.rewrite_ns"].Count; n != 3 {
		t.Fatalf("disabled cache must replan every query: rewrite_ns count=%d, want 3", n)
	}
}

// TestPlanCacheEviction: a capacity-1 cache thrashing between two patterns
// must evict (and count it) while still answering correctly.
func TestPlanCacheEviction(t *testing.T) {
	e := newEngine(t)
	e.Options.PlanCacheSize = 1
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	queries := []string{`doc("bib.xml")//book/title`, `doc("bib.xml")//book/author`, `doc("bib.xml")//book/title`}
	for _, q := range queries {
		if _, _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	snap := e.Metrics.Snapshot()
	if snap.Counters["engine.plan_cache_evictions"] < 2 {
		t.Fatalf("capacity-1 cache must evict on each alternation: evictions=%d",
			snap.Counters["engine.plan_cache_evictions"])
	}
	if snap.Counters["engine.plan_cache_misses"] != 3 {
		t.Fatalf("every alternating query must miss: misses=%d", snap.Counters["engine.plan_cache_misses"])
	}
}

// TestPlanCacheLRU unit-tests the LRU policy directly: a get promotes the
// entry, so the least-recently-used one is evicted first.
func TestPlanCacheLRU(t *testing.T) {
	c := newPlanCache(2)
	a, b := []*rewrite.Rewriting{}, []*rewrite.Rewriting{nil}
	if c.put("a", a) || c.put("b", b) {
		t.Fatal("filling to capacity must not evict")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a must be cached")
	}
	if !c.put("c", nil) {
		t.Fatal("overflow must evict")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b was least recently used and must be gone")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was promoted by get and must survive")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c was just inserted and must be cached")
	}
	if c.put("a", b) {
		t.Fatal("refreshing an existing key must not evict")
	}
	if c.len() != 2 {
		t.Fatalf("len=%d, want 2", c.len())
	}
}

// TestLazyMaterializationOnlyReferencedViews is the lazy-extent regression
// test: with several registered views, a query must materialize only the
// view its chosen plan references. The SkipFirst=1 fault proves it — the
// single referenced view passes the fault check, and any eager second
// materialization would fail the query.
func TestLazyMaterializationOnlyReferencedViews(t *testing.T) {
	e := newEngine(t)
	views := map[string]string{
		"v_title":  `// book(/ title{cont})`,
		"v_author": `// book(/ author{cont})`,
		"v_book":   `// book{id}`,
		"v_year":   `// book(/ year{cont})`,
	}
	for name, pat := range views {
		if err := e.RegisterView("bib.xml", name, pat); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Arm(rewrite.SiteMaterializeView, faultinject.Fault{SkipFirst: 1})
	t.Cleanup(faultinject.Reset)

	got, rep, err := e.Query(`doc("bib.xml")//book/title`)
	if err != nil {
		t.Fatal(err)
	}
	if got != titlesXML || !strings.Contains(rep.Plans[0], "v_title") {
		t.Fatalf("answer wrong: %q plan %s", got, rep.Plans[0])
	}
	if rep.Degraded() {
		t.Fatalf("a fault on the second materialization must never fire on a lazy engine: %+v",
			rep.Degradations)
	}
	if hits := faultinject.Hits(rewrite.SiteMaterializeView); hits != 1 {
		t.Fatalf("exactly one view must materialize, got %d fault-site consultations", hits)
	}
	snap := e.Metrics.Snapshot()
	if n := snap.Counters["engine.views_materialized"]; n != 1 {
		t.Fatalf("engine.views_materialized = %d, want 1", n)
	}
	if n := snap.Histograms["engine.materialize_ns"].Count; n != 1 {
		t.Fatalf("materialize_ns must record one build, got %d", n)
	}
	if !extentBuiltForTest(t, e, "bib.xml", "v_title") {
		t.Fatal("the referenced view's extent must be built")
	}
	for _, name := range []string{"v_author", "v_year"} {
		if extentBuiltForTest(t, e, "bib.xml", name) {
			t.Fatalf("unreferenced view %s must stay unmaterialized", name)
		}
	}
}

// TestExtentCarryOverAcrossRegistration: registering an unrelated view must
// not throw away extents already built for surviving views.
func TestExtentCarryOverAcrossRegistration(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vt", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterView("bib.xml", "va", `// book(/ author{cont})`); err != nil {
		t.Fatal(err)
	}
	if !extentBuiltForTest(t, e, "bib.xml", "vt") {
		t.Fatal("vt's built extent must survive the registration of va")
	}
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if n := e.Metrics.Snapshot().Counters["engine.views_materialized"]; n != 1 {
		t.Fatalf("carry-over must avoid rematerialization: views_materialized=%d, want 1", n)
	}
}

// TestConcurrentRegistrationInvalidation is the -race stress test for the
// copy-on-write snapshot discipline: queries race against RegisterView and
// DropView of a view matching the same pattern, and every answer must equal
// the cold-engine result (physical data independence: the view set never
// changes what a query returns). A stale cached rewriting served across an
// epoch bump would surface as a degradation burst or a wrong answer.
func TestConcurrentRegistrationInvalidation(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "v0", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker, churns = 8, 25, 40
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker+churns)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				got, _, err := e.QueryContext(context.Background(), `doc("bib.xml")//book/title`)
				if err != nil {
					errc <- err
					return
				}
				if got != titlesXML {
					errc <- fmt.Errorf("answer changed under churn: %q", got)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // churn a view over the same pattern the queries use
		defer wg.Done()
		for i := 0; i < churns; i++ {
			if err := e.RegisterView("bib.xml", "vchurn", `// book(/ title{cont})`); err != nil {
				errc <- err
				return
			}
			if err := e.DropView("bib.xml", "vchurn"); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Deterministic staleness check on the settled engine: vchurn is gone,
	// so no plan may reference it, warm or cold.
	for i := 0; i < 2; i++ {
		_, rep, err := e.Query(`doc("bib.xml")//book/title`)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(rep.Plans[0], "vchurn") {
			t.Fatalf("stale rewriting served after DropView: %s", rep.Plans[0])
		}
	}
}
