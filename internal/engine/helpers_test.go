package engine

import (
	"testing"

	"xamdb/internal/algebra"
)

// extentSlotForTest returns the lazy-extent slot of one view in the
// document's current planning snapshot.
func extentSlotForTest(t *testing.T, e *Engine, doc, name string) *viewExtent {
	t.Helper()
	st, err := e.state(doc)
	if err != nil {
		t.Fatal(err)
	}
	x, ok := st.plan().extents[name]
	if !ok {
		t.Fatalf("no extent slot for view %q of %q", name, doc)
	}
	return x
}

// killExtentForTest empties a view's extent slot (built, no relation): the
// next plan referencing the view finds no extent and degrades — the
// post-refactor equivalent of deleting the env entry.
func killExtentForTest(t *testing.T, e *Engine, doc, name string) {
	t.Helper()
	poisonExtentForTest(t, e, doc, name, nil)
}

// poisonExtentForTest force-installs rel as a view's materialized extent.
func poisonExtentForTest(t *testing.T, e *Engine, doc, name string, rel *algebra.Relation) {
	t.Helper()
	x := extentSlotForTest(t, e, doc, name)
	x.mu.Lock()
	x.rel = rel
	x.state.Store(xsBuilt)
	x.mu.Unlock()
}

// extentBuiltForTest reports whether a view's extent has materialized.
func extentBuiltForTest(t *testing.T, e *Engine, doc, name string) bool {
	t.Helper()
	return extentSlotForTest(t, e, doc, name).state.Load() == xsBuilt
}

// builtExtentCountForTest counts materialized extents in the document's
// current snapshot.
func builtExtentCountForTest(t *testing.T, e *Engine, doc string) int {
	t.Helper()
	st, err := e.state(doc)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, x := range st.plan().extents {
		if x.state.Load() == xsBuilt {
			n++
		}
	}
	return n
}

// viewCountForTest returns how many views the document's snapshot holds.
func viewCountForTest(t *testing.T, e *Engine, doc string) int {
	t.Helper()
	st, err := e.state(doc)
	if err != nil {
		t.Fatal(err)
	}
	return len(st.plan().views)
}

// snapshotForTest returns the document's current planning snapshot.
func snapshotForTest(t *testing.T, e *Engine, doc string) *planEnv {
	t.Helper()
	st, err := e.state(doc)
	if err != nil {
		t.Fatal(err)
	}
	return st.plan()
}
