package engine

import (
	"strings"
	"testing"

	"xamdb/internal/obs"
)

// TestWorkloadFoldIn pins the end-to-end observatory wiring: every query
// (view-served or base-scanned) folds its record into Engine.Workload with
// per-view attribution, and the advisor ranks the hot base-scanning
// fingerprint as the top materialization candidate with zero hints.
func TestWorkloadFoldIn(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vtitles", `// book(/ title{cont})`); err != nil {
		t.Fatal(err)
	}

	// Served by the view (first run cold-builds the extent).
	for i := 0; i < 3; i++ {
		if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
			t.Fatal(err)
		}
	}
	// No view covers authors: base scan, repeatedly — the advisor's target.
	for i := 0; i < 5; i++ {
		if _, _, err := e.Query(`doc("bib.xml")//book/author`); err != nil {
			t.Fatal(err)
		}
	}
	// A failing query still lands in the table.
	if _, _, err := e.Query(`doc("nope.xml")//a`); err == nil {
		t.Fatal("expected error for unknown document")
	}

	s := e.Workload.Snapshot()
	if s.TotalQueries != 9 {
		t.Fatalf("total queries = %d, want 9", s.TotalQueries)
	}
	byQuery := map[string]obs.FingerprintStats{}
	for _, f := range s.Fingerprints {
		byQuery[f.Query] = f
	}
	served := byQuery[`doc("bib.xml")//book/title`]
	if served.Count != 3 || served.BaseScans != 0 {
		t.Fatalf("served entry = %+v", served)
	}
	if len(served.Views) != 1 || served.Views[0] != "vtitles" {
		t.Fatalf("served views = %v, want [vtitles]", served.Views)
	}
	if served.CacheHits != 2 || served.CacheMisses != 1 {
		t.Errorf("served cache hits=%d misses=%d, want 2/1", served.CacheHits, served.CacheMisses)
	}
	if served.PhasesNS["execute"] <= 0 {
		t.Errorf("served phases = %v, want execute > 0", served.PhasesNS)
	}
	scanned := byQuery[`doc("bib.xml")//book/author`]
	if scanned.Count != 5 || scanned.BaseScans != 5 {
		t.Fatalf("base-scan entry = %+v", scanned)
	}
	failed := byQuery[`doc("nope.xml")//a`]
	if failed.Errors != 1 || failed.Outcomes["error"] != 1 {
		t.Fatalf("failed entry = %+v", failed)
	}

	if len(s.Views) != 1 || s.Views[0].View != "vtitles" {
		t.Fatalf("view attribution = %+v", s.Views)
	}
	v := s.Views[0]
	if v.Queries != 3 || v.Materializations != 1 {
		t.Fatalf("vtitles queries=%d builds=%d, want 3/1", v.Queries, v.Materializations)
	}
	if v.MaterializeNS <= 0 || v.ExtentBytes <= 0 || v.Rows != 3*2 {
		t.Errorf("vtitles cost figures = %+v", v)
	}

	rep := e.Advise(obs.AdvisorOptions{})
	if len(rep.Candidates) == 0 {
		t.Fatal("advisor found no candidates")
	}
	if got := rep.Candidates[0].Query; got != `doc("bib.xml")//book/author` {
		t.Fatalf("top candidate = %q, want the base-scanned author query", got)
	}
}

// TestWorkloadNilDoesNotBreakQueries pins that disabling either the query
// log or the observatory (or both) leaves the query path working — and
// that a nil log alone does not disable the workload fold-in.
func TestWorkloadNilDoesNotBreakQueries(t *testing.T) {
	e := newEngine(t)
	e.QueryLog = nil
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if s := e.Workload.Snapshot(); s.TotalQueries != 1 {
		t.Fatalf("workload missed the query with a nil QueryLog: %+v", s)
	}
	e.Workload = nil
	if _, _, err := e.Query(`doc("bib.xml")//book/title`); err != nil {
		t.Fatal(err)
	}
	if rep := e.Advise(obs.AdvisorOptions{}); len(rep.Candidates) != 0 {
		t.Fatalf("nil-workload advisor = %+v", rep)
	}
}

// TestWorkloadPredicateAccounting pins the per-fingerprint absorbed /
// residual predicate figures.
func TestWorkloadPredicateAccounting(t *testing.T) {
	e := newEngine(t)
	if err := e.RegisterView("bib.xml", "vta", `// book(/ title{val}, / author{cont})`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Query(`doc("bib.xml")//book[title = "Data on the Web"]/author`); err != nil {
		t.Fatal(err)
	}
	s := e.Workload.Snapshot()
	var f obs.FingerprintStats
	for _, c := range s.Fingerprints {
		if strings.Contains(c.Query, "title = ") {
			f = c
		}
	}
	if f.Count != 1 {
		t.Fatalf("predicate fingerprint missing: %+v", s.Fingerprints)
	}
	if f.PredAbsorbed+f.PredResidual == 0 {
		t.Fatalf("no predicate accounting on %+v", f)
	}
}
