// Package engine assembles the full ULoad-style prototype (§1.2, §5.1): a
// catalog of documents with their path summaries, a set of XAM-described
// storage structures / materialized views per document, and a query
// processor that extracts patterns from XQuery (Chapter 3), rewrites each
// pattern over the registered XAMs under summary constraints (Chapters 4–5),
// and executes the chosen plans — achieving physical data independence:
// changing the storage means changing the registered XAM set, never the
// engine.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/physical"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
	"xamdb/internal/xquery"
)

// docState groups what the engine knows about one document.
type docState struct {
	doc       *xmltree.Document
	summary   *summary.Summary
	views     []*rewrite.View
	viewNames map[string]bool // registered view/module names, for dup rejection
	env       rewrite.Env
	rewriter  *rewrite.Rewriter // rebuilt lazily when views change
}

// Engine is the query processor.
type Engine struct {
	docs map[string]*docState
	// FallbackToBase lets queries run by direct evaluation when no
	// rewriting exists (equivalent to registering the trivial node store).
	FallbackToBase bool
	// UsePhysical executes rewritten plans through the §1.2.3 physical
	// operators (StackTree joins over sorted inputs) instead of the
	// materialized logical evaluator.
	UsePhysical bool
	// QueryTimeout bounds each Query/QueryContext call; 0 means no limit.
	// It composes with any deadline already on the caller's context (the
	// earlier one wins).
	QueryTimeout time.Duration
	Opts         rewrite.Options
}

// New creates an empty engine that falls back to base evaluation. The
// optimizer stops after a handful of plans per pattern; raise Opts.MaxPlans
// to explore exhaustively.
func New() *Engine {
	return &Engine{
		docs:           map[string]*docState{},
		FallbackToBase: true,
		Opts:           rewrite.Options{MaxPlans: 3},
	}
}

// LoadDocument parses and registers a document, building its summary.
func (e *Engine) LoadDocument(name, content string) error {
	doc, err := xmltree.Parse(name, content)
	if err != nil {
		return err
	}
	e.AddDocument(doc)
	return nil
}

// AddDocument registers an already-parsed document.
func (e *Engine) AddDocument(doc *xmltree.Document) {
	e.docs[doc.Name] = &docState{
		doc:       doc,
		summary:   summary.Build(doc),
		viewNames: map[string]bool{},
		env:       rewrite.Env{},
	}
}

// Document returns a registered document, or nil.
func (e *Engine) Document(name string) *xmltree.Document {
	if st, ok := e.docs[name]; ok {
		return st.doc
	}
	return nil
}

// Summary returns a document's path summary, or nil.
func (e *Engine) Summary(name string) *summary.Summary {
	if st, ok := e.docs[name]; ok {
		return st.summary
	}
	return nil
}

func (e *Engine) state(doc string) (*docState, error) {
	st, ok := e.docs[doc]
	if !ok {
		return nil, fmt.Errorf("engine: unknown document %q", doc)
	}
	return st, nil
}

// RegisterView materializes a XAM over the document and makes it available
// to the optimizer. Changing the storage = changing the registered XAM set.
// A name already registered for the document is rejected: silently
// shadowing an extent in the environment would make the optimizer execute
// one view's plan over another view's tuples.
func (e *Engine) RegisterView(doc, name, pat string) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	p, err := xam.Parse(pat)
	if err != nil {
		return err
	}
	if st.viewNames[name] {
		return fmt.Errorf("engine: duplicate view %q for document %q", name, doc)
	}
	st.views = append(st.views, &rewrite.View{Name: name, Pattern: p})
	st.viewNames[name] = true
	st.rewriter = nil
	return nil
}

// RegisterStore adds every module of a storage scheme as a view. Module
// names must not collide with already-registered views or modules of the
// same document; on collision nothing is registered.
func (e *Engine) RegisterStore(doc string, store *storage.Store) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	views := store.Views()
	for _, v := range views {
		if st.viewNames[v.Name] {
			return fmt.Errorf("engine: duplicate view %q (module of store %q) for document %q",
				v.Name, store.Name, doc)
		}
	}
	st.views = append(st.views, views...)
	for _, v := range views {
		st.viewNames[v.Name] = true
	}
	for name, rel := range store.Env() {
		st.env[name] = rel
	}
	st.rewriter = nil
	return nil
}

// rewriterFor returns (building if needed) the document's rewriter and env.
func (e *Engine) rewriterFor(st *docState) (*rewrite.Rewriter, rewrite.Env, error) {
	if st.rewriter == nil {
		st.rewriter = rewrite.NewRewriter(st.summary, st.views, e.Opts)
		// Materialize any views that have no extent yet.
		env, err := st.rewriter.Materialize(st.doc)
		if err != nil {
			return nil, nil, err
		}
		for name, rel := range env {
			if _, have := st.env[name]; !have {
				st.env[name] = rel
			}
		}
	}
	return st.rewriter, st.env, nil
}

// Degradation records one step down the fallback cascade: a plan that
// failed at execution time and what the engine did about it.
type Degradation struct {
	Pattern int    // index into Report.Patterns
	Plan    string // the plan that failed
	Err     string // why it failed
}

// Report describes how a query was answered.
type Report struct {
	Patterns []string // extracted query patterns
	Plans    []string // chosen plan per pattern ("base scan" for fallback)
	// Degradations lists every plan that failed at execution time and was
	// replaced by the next-best rewriting or the base scan. Empty for a
	// cleanly-answered query.
	Degradations []Degradation
}

// Degraded reports whether any pattern was answered by a fallback after
// its preferred plan failed.
func (r *Report) Degraded() bool { return len(r.Degradations) > 0 }

func (r *Report) String() string {
	var sb strings.Builder
	for i := range r.Patterns {
		fmt.Fprintf(&sb, "pattern %d: %s\n  plan: %s\n", i+1, r.Patterns[i], r.Plans[i])
		for _, d := range r.Degradations {
			if d.Pattern == i {
				fmt.Fprintf(&sb, "  degraded: plan %s failed: %s\n", d.Plan, d.Err)
			}
		}
	}
	return sb.String()
}

// Query parses, plans and executes an XQuery, returning the serialized XML
// result and the planning report.
func (e *Engine) Query(src string) (string, *Report, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: cancellation and deadlines abort
// planning and execution (physical plans stop at their next cancellation
// checkpoint). A non-zero QueryTimeout is applied on top of ctx.
func (e *Engine) QueryContext(ctx context.Context, src string) (string, *Report, error) {
	if e.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.QueryTimeout)
		defer cancel()
	}
	q, err := xquery.Parse(src)
	if err != nil {
		return "", nil, err
	}
	ex, err := xquery.Extract(q)
	if err != nil {
		return "", nil, err
	}
	report := &Report{}
	var combined *algebra.Relation
	for i, pat := range ex.Patterns {
		if err := ctx.Err(); err != nil {
			return "", nil, err
		}
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return "", nil, err
		}
		rel, planDesc, err := e.answerPattern(ctx, st, i, pat, report)
		if err != nil {
			return "", nil, err
		}
		report.Plans = append(report.Plans, planDesc)
		if combined == nil {
			combined = rel
		} else {
			combined = algebra.Product(combined, rel)
		}
	}
	for _, j := range ex.Joins {
		combined, err = applyJoin(combined, j)
		if err != nil {
			return "", nil, err
		}
	}
	nodes, err := algebra.XMLize(combined, ex.Template)
	if err != nil {
		return "", nil, err
	}
	return algebra.SerializeNodes(nodes), report, nil
}

// ctxErr reports whether err carries a context cancellation: those abort
// the query instead of triggering the fallback cascade.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// answerPattern rewrites one query pattern over the document's views, and
// walks the fallback cascade on execution failure: next-best rewriting →
// base scan. Every step down is recorded in report.Degradations. Only
// context cancellation and base-scan failure abort the query.
func (e *Engine) answerPattern(ctx context.Context, st *docState, patIdx int, pat *xam.Pattern, report *Report) (*algebra.Relation, string, error) {
	degrade := func(plan string, err error) {
		report.Degradations = append(report.Degradations,
			Degradation{Pattern: patIdx, Plan: plan, Err: err.Error()})
	}
	if len(st.views) > 0 {
		rw, env, err := e.rewriterFor(st)
		if err != nil {
			// A failed view materialization leaves the rewritings unusable;
			// fall through to the base scan (the document itself is intact).
			degrade("(view materialization)", err)
		} else {
			plans, err := rw.Rewrite(pat)
			if err != nil {
				degrade("(rewriting search)", err)
			}
			for _, plan := range plans {
				rel, err := e.execPlan(ctx, plan, env)
				if err == nil {
					return rel, plan.Plan.String(), nil
				}
				if ctxErr(err) || ctx.Err() != nil {
					return nil, "", err
				}
				degrade(plan.Plan.String(), err)
			}
		}
	}
	if !e.FallbackToBase {
		return nil, "", fmt.Errorf("engine: no rewriting for pattern %s", pat)
	}
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	rel, err := evalBase(pat, st.doc)
	if err != nil {
		return nil, "", err
	}
	return rel, "base scan (direct evaluation)", nil
}

// execPlan executes one rewriting with panics recovered into errors, so an
// operator bug in a plan degrades to the next plan instead of killing the
// process. Cancellation panics keep their context error.
func (e *Engine) execPlan(ctx context.Context, plan *rewrite.Rewriting, env rewrite.Env) (rel *algebra.Relation, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*physical.Cancelled); ok {
				rel, err = nil, c.Err
				return
			}
			// Keep recovered error values in the chain so the cascade's
			// callers can errors.Is/As on them (e.g. faultinject.ErrInjected
			// in resilience tests, sentinel errors from operators).
			if perr, ok := p.(error); ok {
				rel, err = nil, fmt.Errorf("engine: plan execution panic: %w", perr)
				return
			}
			rel, err = nil, fmt.Errorf("engine: plan execution panic: %v", p)
		}
	}()
	if e.UsePhysical {
		rel, err = rewrite.ExecutePhysicalContext(ctx, plan.Plan, env)
		if err == nil {
			rel, err = renamePhysical(rel, plan)
		}
		return rel, err
	}
	// The logical evaluator is materialized end-to-end; check the context
	// at the boundary rather than per tuple.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return plan.Execute(env)
}

// evalBase runs direct evaluation with panics recovered into errors: the
// base scan is the cascade's floor, so its failure must surface as a
// query error, never a crash.
func evalBase(pat *xam.Pattern, doc *xmltree.Document) (rel *algebra.Relation, err error) {
	defer func() {
		if p := recover(); p != nil {
			if perr, ok := p.(error); ok {
				rel, err = nil, fmt.Errorf("engine: base evaluation panic: %w", perr)
				return
			}
			rel, err = nil, fmt.Errorf("engine: base evaluation panic: %v", p)
		}
	}()
	return pat.Eval(doc)
}

// renamePhysical aligns a physically-executed plan's output with the query
// pattern's schema, as Rewriting.Execute does for the logical path.
func renamePhysical(rel *algebra.Relation, rw *rewrite.Rewriting) (*algebra.Relation, error) {
	want := rw.Query.Schema()
	if len(rel.Schema.Attrs) != len(want.Attrs) {
		return nil, fmt.Errorf("engine: physical output shape mismatch: %s vs %s", rel.Schema, want)
	}
	out := algebra.NewRelation(want)
	out.Tuples = rel.Tuples
	return out, nil
}

func applyJoin(r *algebra.Relation, j xquery.ValueJoin) (*algebra.Relation, error) {
	li := r.Schema.Index(j.LeftAttr)
	ri := r.Schema.Index(j.RightAttr)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("engine: join attribute %q/%q missing", j.LeftAttr, j.RightAttr)
	}
	ops := map[string]algebra.Cmp{"=": algebra.Eq, "!=": algebra.Ne, "<": algebra.Lt,
		"<=": algebra.Le, ">": algebra.Gt, ">=": algebra.Ge}
	op, ok := ops[j.Op]
	if !ok {
		return nil, fmt.Errorf("engine: unsupported comparator %q", j.Op)
	}
	out := algebra.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if op.Apply(t[li], t[ri]) {
			out.Add(t)
		}
	}
	return out, nil
}

// Explain plans a query without executing it.
func (e *Engine) Explain(src string) (*Report, error) {
	return e.ExplainContext(context.Background(), src)
}

// ExplainContext is Explain under a context; the plan search for each
// pattern starts only while the context is live.
func (e *Engine) ExplainContext(ctx context.Context, src string) (*Report, error) {
	if e.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.QueryTimeout)
		defer cancel()
	}
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	ex, err := xquery.Extract(q)
	if err != nil {
		return nil, err
	}
	report := &Report{}
	for i, pat := range ex.Patterns {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return nil, err
		}
		desc := "base scan (direct evaluation)"
		if len(st.views) > 0 {
			rw, _, err := e.rewriterFor(st)
			if err != nil {
				return nil, err
			}
			plans, err := rw.Rewrite(pat)
			if err != nil {
				return nil, err
			}
			if len(plans) > 0 {
				desc = plans[0].Plan.String()
			} else if !e.FallbackToBase {
				desc = "NO PLAN"
			}
		}
		report.Plans = append(report.Plans, desc)
	}
	return report, nil
}
