// Package engine assembles the full ULoad-style prototype (§1.2, §5.1): a
// catalog of documents with their path summaries, a set of XAM-described
// storage structures / materialized views per document, and a query
// processor that extracts patterns from XQuery (Chapter 3), rewrites each
// pattern over the registered XAMs under summary constraints (Chapters 4–5),
// and executes the chosen plans — achieving physical data independence:
// changing the storage means changing the registered XAM set, never the
// engine.
//
// The engine is goroutine-safe: QueryContext / ExplainContext / Analyze may
// run concurrently with each other and with view registration. Planning
// state is copy-on-write: each query atomically loads an immutable planEnv
// snapshot (view set, rewriter, plan cache, extent table), so read-only
// workloads plan lock-free; only RegisterView / RegisterStore / DropView
// take the per-document write lock and publish a fresh snapshot with a
// bumped epoch. Compiled rewritings are cached per snapshot (LRU, keyed by
// the pattern's canonical print), and view extents materialize lazily, one
// view at a time, only when a chosen plan references them.
//
// The configuration fields (FallbackToBase, UsePhysical, QueryTimeout,
// Opts, Options, Metrics) must be set before the engine starts serving
// concurrent traffic. Every query is measured through the internal/obs
// observability layer: engine-level counters and latency histograms in
// Metrics, and a per-query trace span tree attached to the Report.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/faultinject"
	"xamdb/internal/obs"
	"xamdb/internal/physical"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
	"xamdb/internal/xquery"
)

// docState groups what the engine knows about one document. doc and summary
// are immutable after registration; the planning state (views, rewriter,
// plan cache, extents) lives in an immutable planEnv snapshot reached
// through an atomic pointer. mu serializes writers (view registration and
// removal); readers never take it.
type docState struct {
	doc     *xmltree.Document
	summary *summary.Summary

	mu sync.Mutex // serializes snapshot publication, never held by queries
	pe atomic.Pointer[planEnv]
}

// plan returns the current planning snapshot (lock-free).
func (st *docState) plan() *planEnv { return st.pe.Load() }

// planEnv is one immutable planning snapshot of a document: the registered
// view set, the store-supplied extents, the lazily-built rewriter, the
// rewriting cache and the per-view extent table. Registration publishes a
// fresh snapshot with epoch+1; in-flight queries keep using the snapshot
// they loaded, so a query never observes a half-updated view catalog and a
// cached rewriting can never outlive its view set (the cache dies with the
// snapshot — the (pattern, epoch) cache key of DESIGN.md is implicit).
type planEnv struct {
	epoch     uint64
	summary   *summary.Summary
	views     []*rewrite.View
	viewNames map[string]bool
	// baseEnv holds extents supplied by RegisterStore (already materialized
	// by the storage layer). Immutable.
	baseEnv rewrite.Env
	// extents holds one lazily-materialized extent slot per view that needs
	// evaluation over the document (views not covered by baseEnv and not
	// R-marked index patterns). The map itself is immutable; each slot
	// carries its own lock. Slots whose view (name, pattern) survived a
	// re-registration are carried over, so bumping the epoch does not throw
	// away already-built extents.
	extents map[string]*viewExtent
	// cache memoizes compiled rewritings per canonical pattern print; nil
	// when the plan cache is disabled.
	cache *planCache

	rwOnce   sync.Once
	rewriter *rewrite.Rewriter
}

// planner returns the snapshot's rewriter, building it on first use.
// Building is pure planning state — no document access, no extent
// materialization — so Explain stays read-only and cheap.
func (pe *planEnv) planner(opts rewrite.Options) *rewrite.Rewriter {
	pe.rwOnce.Do(func() {
		pe.rewriter = rewrite.NewRewriter(pe.summary, pe.views, opts)
	})
	return pe.rewriter
}

// Extent materialization states, readable lock-free by monitoring surfaces
// (SyncStateGauges, Catalog) while a build holds the slot mutex.
const (
	xsUnbuilt int32 = iota
	xsBuilt
	xsFailed // last materialization attempt failed; retried on next use
)

// viewExtent is the lazily-built extent of one view. The state
// distinguishes "not yet materialized" (retry on next use) from a
// materialized slot, so a failed materialization degrades only the queries
// that needed the view and is retried the next time a plan references it;
// a failed slot additionally reports xsFailed so the gauges and /debug/
// catalog can attribute degradations to the culprit view.
type viewExtent struct {
	patternKey string // identity for carry-over across snapshots

	mu    sync.Mutex
	rel   *algebra.Relation // valid only in state xsBuilt; guarded by mu
	state atomic.Int32      // written under mu, read lock-free by monitors
}

// get returns the extent, materializing it on first use; buildNS is the
// build's duration when this call did the work (0 on a warm hit), so the
// caller can attribute cold-build cost to the query that paid it. A nil
// relation in the built state means the slot was poisoned (tests) or the
// view has no standalone extent; the caller omits it from the execution
// env. Cold builds open a trace span named after the view, so cold-start
// spikes are attributable in the span tree and in the per-view counters.
func (x *viewExtent) get(pe *planEnv, doc *xmltree.Document, name string, opts rewrite.Options, m *engineMetrics, tr *obs.Trace, parent *obs.Span) (*algebra.Relation, int64, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.state.Load() == xsBuilt {
		return x.rel, 0, nil
	}
	if tr != nil {
		span := tr.StartSpan(parent, "materialize("+name+")")
		defer span.End()
	}
	start := time.Now()
	rel, err := pe.planner(opts).MaterializeView(doc, name)
	if err != nil {
		x.state.Store(xsFailed)
		return nil, int64(time.Since(start)), err
	}
	buildNS := int64(time.Since(start))
	m.materializeNS.Observe(buildNS)
	m.viewsMaterialized.Inc()
	m.reg.Counter(MetricViewMaterializedPrefix + name).Inc()
	x.rel = rel
	x.state.Store(xsBuilt)
	return rel, buildNS, nil
}

// envFor assembles the execution environment for one plan: store-supplied
// extents straight from the snapshot, view extents materialized lazily. It
// returns the name of the view whose materialization failed, if any, so the
// degradation names the culprit. Cold builds are attributed on the report
// (the query that paid for them), even when the plan later loses — work
// done is work done.
// Each extent placed in the env is charged against the query's budget (when
// one rides the context), so a plan touching more decoded bytes than its
// quota allows is killed before execution pulls a single tuple.
func (pe *planEnv) envFor(doc *xmltree.Document, plan rewrite.Plan, opts rewrite.Options, budget *physical.Budget, report *Report, m *engineMetrics, tr *obs.Trace, pspan *obs.Span) (rewrite.Env, string, error) {
	refs := rewrite.ViewRefs(plan)
	env := make(rewrite.Env, len(refs))
	for _, name := range refs {
		rel, ok := pe.baseEnv[name]
		if !ok {
			x, xok := pe.extents[name]
			if !xok {
				continue // index view or unknown: the plan degrades at execution
			}
			var err error
			var buildNS int64
			rel, buildNS, err = x.get(pe, doc, name, opts, m, tr, pspan)
			if buildNS > 0 && report != nil {
				report.viewUse(name).MaterializeNS += buildNS
			}
			if err != nil {
				return nil, name, err
			}
			if rel == nil {
				continue
			}
		}
		if err := budget.ChargeExtentBytes(rel.EstimatedBytes()); err != nil {
			return nil, name, err
		}
		env[name] = rel
	}
	return env, "", nil
}

// Options configures the engine's warm-path planning machinery.
type Options struct {
	// PlanCacheSize bounds the per-document LRU of compiled rewritings
	// (entries, not bytes); 0 means DefaultPlanCacheSize.
	PlanCacheSize int
	// DisablePlanCache bypasses the rewriting cache entirely — every query
	// redoes the containment search (degraded/debug runs; uload -nocache).
	DisablePlanCache bool
}

// DefaultPlanCacheSize is the per-document rewriting-cache bound applied
// when Options.PlanCacheSize is zero.
const DefaultPlanCacheSize = 256

// Engine is the query processor.
type Engine struct {
	mu   sync.RWMutex
	docs map[string]*docState

	// FallbackToBase lets queries run by direct evaluation when no
	// rewriting exists (equivalent to registering the trivial node store).
	FallbackToBase bool
	// UsePhysical executes rewritten plans through the §1.2.3 physical
	// operators (StackTree joins over sorted inputs) instead of the
	// materialized logical evaluator.
	UsePhysical bool
	// UseBatch routes physical execution through the vectorized batch
	// operators (column-vector batches with row-engine fallback adapters);
	// it only takes effect together with UsePhysical. New enables it; uload
	// -nobatch disables it for row-vs-batch ablations.
	UseBatch bool
	// QueryTimeout bounds each Query/QueryContext call; 0 means no limit.
	// It composes with any deadline already on the caller's context (the
	// earlier one wins).
	QueryTimeout time.Duration
	Opts         rewrite.Options
	// Options tunes the planning warm path (plan cache size / bypass).
	Options Options
	// Metrics receives the engine's counters and latency histograms (see
	// DESIGN.md "Observability" for the metric names). New wires a fresh
	// registry; nil falls back to the process-wide obs.Default().
	Metrics *obs.Registry
	// QueryLog receives one structured record per query — successful,
	// degraded or failed. New installs a DefaultQueryLogSize-entry log with
	// DefaultSlowQueryThreshold; nil disables logging. Queries crossing the
	// slow threshold retain their full trace (and, once their fingerprint
	// recurs, EXPLAIN ANALYZE operator stats) in the record.
	QueryLog *obs.QueryLog
	// Workload is the fingerprint-aggregated workload observatory: every
	// completed query folds its record into the bounded aggregate table and
	// the per-view attribution index, feeding /debug/workload and the view
	// advisor (/debug/advisor). New installs a DefaultWorkloadTopK-entry
	// table; nil disables aggregation.
	Workload *obs.WorkloadStats

	ms atomic.Pointer[engineMetrics]

	// slowFPs collects the fingerprints of queries that crossed the slow
	// threshold; their next runs execute instrumented so the query log can
	// retain operator stats. Bounded by maxSlowFingerprints.
	slowFPs     sync.Map // fingerprint → struct{}
	slowFPCount atomic.Int64
}

// DefaultQueryLogSize is the query-log ring capacity New installs.
const DefaultQueryLogSize = 512

// DefaultSlowQueryThreshold is the slow-query threshold New installs.
const DefaultSlowQueryThreshold = 100 * time.Millisecond

// maxSlowFingerprints bounds the auto-instrument set so an adversarial
// workload of unique slow queries cannot grow it without limit.
const maxSlowFingerprints = 128

// DefaultWorkloadTopK is the workload observatory's exact-entry bound New
// installs (top-K fingerprints; the rest aggregate in the overflow bucket).
const DefaultWorkloadTopK = 128

// New creates an empty engine that falls back to base evaluation. The
// optimizer stops after a handful of plans per pattern; raise Opts.MaxPlans
// to explore exhaustively.
func New() *Engine {
	return &Engine{
		docs:           map[string]*docState{},
		FallbackToBase: true,
		UseBatch:       true,
		Opts:           rewrite.Options{MaxPlans: 3},
		Metrics:        obs.NewRegistry(),
		QueryLog:       obs.NewQueryLog(DefaultQueryLogSize, DefaultSlowQueryThreshold),
		Workload:       obs.NewWorkloadStats(DefaultWorkloadTopK),
	}
}

func (e *Engine) metrics() *obs.Registry {
	if e.Metrics != nil {
		return e.Metrics
	}
	return obs.Default()
}

// m returns the cached metric handles, rebuilding them if the registry was
// swapped (a pre-serving configuration step).
func (e *Engine) m() *engineMetrics {
	reg := e.metrics()
	if ms := e.ms.Load(); ms != nil && ms.reg == reg {
		return ms
	}
	ms := newEngineMetrics(reg)
	// Racing rebuilds converge: every store for the same registry carries
	// equivalent handles, and registry swaps are a pre-serving config step.
	//xamlint:allow snapshot(idempotent rebuild; racing stores publish equivalent handle sets for the same registry)
	e.ms.Store(ms)
	return ms
}

// newPlanCacheFor sizes a fresh rewriting cache from the engine options;
// nil when caching is disabled.
func (e *Engine) newPlanCacheFor() *planCache {
	if e.Options.DisablePlanCache {
		return nil
	}
	size := e.Options.PlanCacheSize
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	return newPlanCache(size)
}

// LoadDocument parses and registers a document, building its summary.
func (e *Engine) LoadDocument(name, content string) error {
	doc, err := xmltree.Parse(name, content)
	if err != nil {
		return err
	}
	e.AddDocument(doc)
	return nil
}

// AddDocument registers an already-parsed document.
func (e *Engine) AddDocument(doc *xmltree.Document) {
	st := &docState{doc: doc, summary: summary.Build(doc)}
	st.pe.Store(&planEnv{
		summary:   st.summary,
		viewNames: map[string]bool{},
		baseEnv:   rewrite.Env{},
		extents:   map[string]*viewExtent{},
		cache:     e.newPlanCacheFor(),
	})
	e.mu.Lock()
	defer e.mu.Unlock()
	e.docs[doc.Name] = st
}

// Document returns a registered document, or nil.
func (e *Engine) Document(name string) *xmltree.Document {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if st, ok := e.docs[name]; ok {
		return st.doc
	}
	return nil
}

// Summary returns a document's path summary, or nil.
func (e *Engine) Summary(name string) *summary.Summary {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if st, ok := e.docs[name]; ok {
		return st.summary
	}
	return nil
}

func (e *Engine) state(doc string) (*docState, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.docs[doc]
	if !ok {
		return nil, fmt.Errorf("engine: unknown document %q", doc)
	}
	return st, nil
}

// publishLocked builds and installs the next planning snapshot from the
// given view catalog and store env, carrying over already-built extents for
// views whose (name, pattern) identity is unchanged. Callers hold st.mu.
func (st *docState) publishLocked(e *Engine, views []*rewrite.View, names map[string]bool, baseEnv rewrite.Env) {
	old := st.pe.Load()
	next := &planEnv{
		epoch:     old.epoch + 1,
		summary:   st.summary,
		views:     views,
		viewNames: names,
		baseEnv:   baseEnv,
		extents:   make(map[string]*viewExtent, len(views)),
		cache:     e.newPlanCacheFor(),
	}
	for _, v := range views {
		if _, fromStore := baseEnv[v.Name]; fromStore {
			continue // extent supplied by the storage layer
		}
		if v.Pattern.HasRequired() {
			continue // index view: no standalone extent
		}
		key := v.Pattern.String()
		if prev, ok := old.extents[v.Name]; ok && prev.patternKey == key {
			next.extents[v.Name] = prev
			continue
		}
		next.extents[v.Name] = &viewExtent{patternKey: key}
	}
	st.pe.Store(next)
}

// RegisterView makes a XAM available to the optimizer for the document; its
// extent materializes lazily the first time a chosen plan references it.
// Changing the storage = changing the registered XAM set. A name already
// registered for the document is rejected: silently shadowing an extent in
// the environment would make the optimizer execute one view's plan over
// another view's tuples.
func (e *Engine) RegisterView(doc, name, pat string) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	p, err := xam.Parse(pat)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.pe.Load()
	if cur.viewNames[name] {
		return fmt.Errorf("engine: duplicate view %q for document %q", name, doc)
	}
	views := append(append([]*rewrite.View{}, cur.views...), &rewrite.View{Name: name, Pattern: p})
	names := make(map[string]bool, len(cur.viewNames)+1)
	for n := range cur.viewNames {
		names[n] = true
	}
	names[name] = true
	st.publishLocked(e, views, names, cur.baseEnv)
	return nil
}

// RegisterStore adds every module of a storage scheme as a view, with the
// store's pre-materialized extents. Module names must not collide with
// already-registered views or modules of the same document; on collision
// nothing is registered.
func (e *Engine) RegisterStore(doc string, store *storage.Store) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	storeViews := store.Views()
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.pe.Load()
	for _, v := range storeViews {
		if cur.viewNames[v.Name] {
			return fmt.Errorf("engine: duplicate view %q (module of store %q) for document %q",
				v.Name, store.Name, doc)
		}
	}
	views := append(append([]*rewrite.View{}, cur.views...), storeViews...)
	names := make(map[string]bool, len(cur.viewNames)+len(storeViews))
	for n := range cur.viewNames {
		names[n] = true
	}
	baseEnv := make(rewrite.Env, len(cur.baseEnv)+len(storeViews))
	for n, rel := range cur.baseEnv {
		baseEnv[n] = rel
	}
	for _, v := range storeViews {
		names[v.Name] = true
	}
	for name, rel := range store.Env() {
		baseEnv[name] = rel
	}
	st.publishLocked(e, views, names, baseEnv)
	return nil
}

// DropView removes a view (or store module) from the document's catalog and
// publishes a fresh planning snapshot, so no later query can plan over it —
// cached rewritings die with the superseded snapshot.
func (e *Engine) DropView(doc, name string) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.pe.Load()
	if !cur.viewNames[name] {
		return fmt.Errorf("engine: unknown view %q for document %q", name, doc)
	}
	views := make([]*rewrite.View, 0, len(cur.views)-1)
	for _, v := range cur.views {
		if v.Name != name {
			views = append(views, v)
		}
	}
	names := make(map[string]bool, len(cur.viewNames)-1)
	for n := range cur.viewNames {
		if n != name {
			names[n] = true
		}
	}
	baseEnv := cur.baseEnv
	if _, ok := baseEnv[name]; ok {
		baseEnv = make(rewrite.Env, len(cur.baseEnv)-1)
		for n, rel := range cur.baseEnv {
			if n != name {
				baseEnv[n] = rel
			}
		}
	}
	st.publishLocked(e, views, names, baseEnv)
	return nil
}

// SiteRewrite is the fault-injection site consulted before the rewriting
// search; arming it models planner failures (including quota kills that
// must abort the query rather than degrade it).
const SiteRewrite = "engine.rewrite"

// compileRewritings returns the pattern's rewritings over the snapshot's
// views, consulting the plan cache first: on a hit the containment search
// is skipped entirely. tr may be nil (Explain records no trace); cache
// outcomes are tallied both in the engine counters and on the report, so
// the query log can record per-query hit/miss figures.
func (e *Engine) compileRewritings(pe *planEnv, pat *xam.Pattern, report *Report, tr *obs.Trace, pspan *obs.Span) ([]*rewrite.Rewriting, error) {
	if err := faultinject.Check(SiteRewrite); err != nil {
		return nil, err
	}
	m := e.m()
	cache := pe.cache
	if cache != nil && e.Options.DisablePlanCache {
		cache = nil
	}
	var key string
	if cache != nil {
		var cspan *obs.Span
		if tr != nil {
			cspan = tr.StartSpan(pspan, "cache")
		}
		key = pat.CacheKey()
		plans, hit := cache.get(key)
		if cspan != nil {
			cspan.End()
		}
		if hit {
			m.cacheHits.Inc()
			report.PlanCacheHits++
			return plans, nil
		}
		m.cacheMisses.Inc()
		report.PlanCacheMisses++
	}
	var rspan *obs.Span
	if tr != nil {
		rspan = tr.StartSpan(pspan, "rewrite")
	}
	start := time.Now()
	plans, err := pe.planner(e.Opts).Rewrite(pat)
	m.rewriteNS.Since(start)
	if rspan != nil {
		rspan.End()
	}
	if err != nil {
		return nil, err
	}
	if cache != nil {
		if cache.put(key, plans) {
			m.cacheEvictions.Inc()
		}
	}
	return plans, nil
}

// Degradation records one step down the fallback cascade: a plan that
// failed at execution time and what the engine did about it.
type Degradation struct {
	Pattern int    // index into Report.Patterns
	Plan    string // the plan that failed
	Err     string // why it failed
}

// Report describes how a query was answered.
type Report struct {
	Patterns []string // extracted query patterns
	Plans    []string // chosen plan per pattern ("base scan" for fallback)
	// Degradations lists every plan that failed at execution time and was
	// replaced by the next-best rewriting or the base scan. Empty for a
	// cleanly-answered query.
	Degradations []Degradation
	// Trace is the query's span tree (parse → extract → per-pattern
	// cache/rewrite/materialize(view)/execute), attached by QueryContext.
	Trace *obs.Trace
	// Ops holds one EXPLAIN ANALYZE operator tree per pattern, populated
	// by Analyze/AnalyzeContext — and by QueryContext for queries whose
	// fingerprint previously crossed the slow-query threshold (slow-query
	// capture instruments recurrences so the log retains operator stats).
	Ops []*physical.OpStats
	// PlanCacheHits / PlanCacheMisses count this query's rewriting-cache
	// outcomes across its patterns.
	PlanCacheHits   int
	PlanCacheMisses int
	// BaseScans counts patterns this query answered by direct evaluation
	// (the fallback cascade's floor) — the signal the view advisor mines
	// for materialization candidates.
	BaseScans int
	// PredAbsorbed marks that at least one decorated pattern was answered
	// from views (its value predicates absorbed into the view scans);
	// ResidualSelections counts the σ_φ left above the winning plans.
	PredAbsorbed       bool
	ResidualSelections int
	// Batches / BatchFallbacks count this query's vectorized batches and
	// row-engine fallback adaptations.
	Batches        int64
	BatchFallbacks int64

	// viewUses accumulates per-view attribution (references by winning
	// plans, extent bytes placed in the env, materialize cost this query
	// paid) for the workload observatory. Per-query, single-goroutine.
	viewUses map[string]*obs.ViewUse
}

// viewUse returns the report's attribution slot for one view.
func (r *Report) viewUse(name string) *obs.ViewUse {
	if r.viewUses == nil {
		r.viewUses = map[string]*obs.ViewUse{}
	}
	vu, ok := r.viewUses[name]
	if !ok {
		vu = &obs.ViewUse{Name: name}
		r.viewUses[name] = vu
	}
	return vu
}

// ViewUses returns the per-view attribution collected for this query,
// sorted by view name (nil when no view was touched).
func (r *Report) ViewUses() []obs.ViewUse {
	if len(r.viewUses) == 0 {
		return nil
	}
	out := make([]obs.ViewUse, 0, len(r.viewUses))
	for _, vu := range r.viewUses {
		out = append(out, *vu)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Degraded reports whether any pattern was answered by a fallback after
// its preferred plan failed.
func (r *Report) Degraded() bool { return len(r.Degradations) > 0 }

// String renders the report. It tolerates partial reports (a pattern
// recorded but its plan not yet chosen when the query failed), so the
// telemetry of an aborted query is still printable.
func (r *Report) String() string {
	var sb strings.Builder
	for i := range r.Patterns {
		plan := "(none: query did not complete)"
		if i < len(r.Plans) {
			plan = r.Plans[i]
		}
		fmt.Fprintf(&sb, "pattern %d: %s\n  plan: %s\n", i+1, r.Patterns[i], plan)
		for _, d := range r.Degradations {
			if d.Pattern == i {
				fmt.Fprintf(&sb, "  degraded: plan %s failed: %s\n", d.Plan, d.Err)
			}
		}
	}
	return sb.String()
}

// AnalyzeString renders the EXPLAIN ANALYZE view: per pattern, the chosen
// plan and its operator tree annotated with rows, timings and checkpoint
// polls. Patterns without an operator tree (not run under Analyze) fall
// back to the plain report line.
func (r *Report) AnalyzeString() string {
	var sb strings.Builder
	for i := range r.Patterns {
		plan := "(none: query did not complete)"
		if i < len(r.Plans) {
			plan = r.Plans[i]
		}
		fmt.Fprintf(&sb, "pattern %d: %s\n  plan: %s\n", i+1, r.Patterns[i], plan)
		if i < len(r.Ops) && r.Ops[i] != nil {
			for _, line := range strings.Split(strings.TrimRight(r.Ops[i].String(), "\n"), "\n") {
				fmt.Fprintf(&sb, "  %s\n", line)
			}
		}
	}
	return sb.String()
}

// Query parses, plans and executes an XQuery, returning the serialized XML
// result and the planning report.
func (e *Engine) Query(src string) (string, *Report, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: cancellation and deadlines abort
// planning and execution (physical plans stop at their next cancellation
// checkpoint). A non-zero QueryTimeout is applied on top of ctx. On error
// the partial *Report gathered so far is returned alongside it, so
// degradation telemetry is never discarded.
func (e *Engine) QueryContext(ctx context.Context, src string) (string, *Report, error) {
	return e.run(ctx, src, false)
}

// Analyze is Query with per-operator instrumentation (EXPLAIN ANALYZE):
// rewritten plans execute through the physical engine wrapped in
// physical.Instrument nodes, and Report.Ops carries one operator tree per
// pattern, annotated with rows, time and checkpoint polls.
func (e *Engine) Analyze(src string) (string, *Report, error) {
	return e.AnalyzeContext(context.Background(), src)
}

// AnalyzeContext is Analyze under a context.
func (e *Engine) AnalyzeContext(ctx context.Context, src string) (string, *Report, error) {
	return e.run(ctx, src, true)
}

// run is the shared query path of QueryContext and AnalyzeContext.
func (e *Engine) run(ctx context.Context, src string, analyze bool) (out string, report *Report, err error) {
	m := e.m()
	m.queries.Inc()
	m.inflight.Add(1)
	start := time.Now()
	tr := obs.NewTrace("query")
	report = &Report{Trace: tr}
	fp := fingerprintSource(src) // refined to the pattern fingerprint below
	var rowsOut int64
	defer func() {
		tr.End()
		dur := time.Since(start)
		m.inflight.Add(-1)
		m.queryNS.ObserveDuration(dur)
		m.fallbackDepth.Observe(int64(len(report.Degradations)))
		if report.Degraded() {
			m.queriesDegraded.Inc()
		}
		if err != nil {
			m.queryErrors.Inc()
		}
		e.logQuery(src, fp, start, dur, report, rowsOut, err)
	}()
	if e.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.QueryTimeout)
		defer cancel()
	}
	span := tr.StartSpan(nil, "parse")
	q, err := xquery.Parse(src)
	span.End()
	if err != nil {
		return "", report, err
	}
	span = tr.StartSpan(nil, "extract")
	ex, err := xquery.Extract(q)
	span.End()
	if err != nil {
		return "", report, err
	}
	fp = fingerprintPatterns(ex.Patterns)
	if !analyze && e.instrumentSlow(fp) {
		// Slow-query capture: this fingerprint crossed the threshold
		// before, so run instrumented and let the log retain operator
		// stats for the recurrence.
		analyze = true
	}
	var combined *algebra.Relation
	for i, pat := range ex.Patterns {
		if err := ctx.Err(); err != nil {
			return "", report, err
		}
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return "", report, err
		}
		pspan := tr.StartSpan(nil, fmt.Sprintf("pattern[%d]", i))
		rel, planDesc, ops, err := e.answerPattern(ctx, st, i, pat, report, tr, pspan, analyze)
		pspan.End()
		if err != nil {
			return "", report, err
		}
		report.Plans = append(report.Plans, planDesc)
		if analyze {
			report.Ops = append(report.Ops, ops)
		}
		if combined == nil {
			combined = rel
		} else {
			combined = algebra.Product(combined, rel)
		}
	}
	span = tr.StartSpan(nil, "serialize")
	defer span.End()
	for _, j := range ex.Joins {
		combined, err = applyJoin(combined, j)
		if err != nil {
			return "", report, err
		}
	}
	nodes, err := algebra.XMLize(combined, ex.Template)
	if err != nil {
		return "", report, err
	}
	rowsOut = int64(len(nodes))
	// The rows-out quota is checked before serialization: an over-quota
	// result is discarded, never partially streamed.
	if err := physical.BudgetFrom(ctx).CheckRowsOut(rowsOut); err != nil {
		return "", report, err
	}
	return algebra.SerializeNodes(nodes), report, nil
}

// patternHasValuePred reports whether any node of the query pattern carries
// a value predicate — the precondition for predicate-absorption accounting.
func patternHasValuePred(pat *xam.Pattern) bool {
	for _, n := range pat.Nodes() {
		if n.HasValuePred {
			return true
		}
	}
	return false
}

// ctxErr reports whether err carries a context cancellation: those abort
// the query instead of triggering the fallback cascade.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// abortErr reports whether err must abort the query outright: context
// cancellation, or a per-query quota kill. A quota-killed plan must never
// degrade to the next rewriting or the base scan — the query has exhausted
// its resource envelope, and retrying it cheaper-but-slower would spend even
// more.
func abortErr(err error) bool {
	return ctxErr(err) || errors.Is(err, physical.ErrQuotaExceeded)
}

// answerPattern rewrites one query pattern over the document's current
// planning snapshot, and walks the fallback cascade on plan failure:
// next-best rewriting → base scan. Extents materialize lazily per plan —
// only the views a plan actually references are built, so failed or
// unreferenced views cost nothing. Every step down is recorded in
// report.Degradations and in the engine's metrics. Only context
// cancellation and base-scan failure abort the query.
func (e *Engine) answerPattern(ctx context.Context, st *docState, patIdx int, pat *xam.Pattern, report *Report, tr *obs.Trace, pspan *obs.Span, analyze bool) (*algebra.Relation, string, *physical.OpStats, error) {
	m := e.m()
	budget := physical.BudgetFrom(ctx)
	degrade := func(plan string, err error) {
		m.degradations.Inc()
		report.Degradations = append(report.Degradations,
			Degradation{Pattern: patIdx, Plan: plan, Err: err.Error()})
	}
	pe := st.plan()
	if len(pe.views) > 0 {
		plans, err := e.compileRewritings(pe, pat, report, tr, pspan)
		if err != nil {
			if abortErr(err) {
				return nil, "", nil, err
			}
			degrade("(rewriting search)", err)
		}
		for _, plan := range plans {
			if err := ctx.Err(); err != nil {
				return nil, "", nil, err
			}
			m.plansTried.Inc()
			mspan := tr.StartSpan(pspan, "materialize")
			env, failedView, err := pe.envFor(st.doc, plan.Plan, e.Opts, budget, report, m, tr, mspan)
			mspan.End()
			if err != nil {
				if abortErr(err) {
					return nil, "", nil, err
				}
				// A failed view materialization kills only the plans that
				// reference the view; the next rewriting may avoid it, and
				// the slot stays unbuilt, so it is retried next time.
				degrade("(view materialization: "+failedView+")", err)
				continue
			}
			espan := tr.StartSpan(pspan, "execute")
			exStart := time.Now()
			rel, ops, err := e.execPlan(ctx, plan, env, analyze, report)
			m.executeNS.Since(exStart)
			espan.End()
			if err == nil {
				// Predicate absorption accounting: a decorated query answered
				// from views absorbed its predicates into the view scans;
				// each σ_φ in the winning plan is a residual selection.
				if patternHasValuePred(pat) {
					m.predAbsorbed.Inc()
					report.PredAbsorbed = true
				}
				if n := rewrite.CountResidualSelections(plan.Plan); n > 0 {
					m.predResidual.Add(int64(n))
					report.ResidualSelections += n
				}
				// Per-view attribution: the winning plan's referenced extents
				// served this pattern (bytes as placed in the env).
				for name, rel := range env {
					vu := report.viewUse(name)
					vu.Referenced = true
					vu.ExtentBytes = rel.EstimatedBytes()
				}
				return rel, plan.Plan.String(), ops, nil
			}
			if abortErr(err) || ctx.Err() != nil {
				return nil, "", nil, err
			}
			degrade(plan.Plan.String(), err)
		}
	}
	if !e.FallbackToBase {
		return nil, "", nil, fmt.Errorf("engine: no rewriting for pattern %s", pat)
	}
	if err := ctx.Err(); err != nil {
		return nil, "", nil, err
	}
	m.baseScans.Inc()
	report.BaseScans++
	bspan := tr.StartSpan(pspan, "execute")
	exStart := time.Now()
	rel, err := evalBase(pat, st.doc)
	exTime := time.Since(exStart)
	m.executeNS.ObserveDuration(exTime)
	bspan.End()
	if err != nil {
		return nil, "", nil, err
	}
	var ops *physical.OpStats
	if analyze {
		ops = &physical.OpStats{
			Label:     "base scan (direct evaluation)",
			Rows:      int64(rel.Len()),
			NextCalls: int64(rel.Len()),
			Time:      exTime,
		}
	}
	return rel, "base scan (direct evaluation)", ops, nil
}

// execPlan executes one rewriting with panics recovered into errors, so an
// operator bug in a plan degrades to the next plan instead of killing the
// process. Cancellation panics keep their context error. With analyze set,
// the plan runs through the instrumented physical path and the operator
// stats tree is returned.
func (e *Engine) execPlan(ctx context.Context, plan *rewrite.Rewriting, env rewrite.Env, analyze bool, report *Report) (rel *algebra.Relation, ops *physical.OpStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*physical.Cancelled); ok {
				rel, err = nil, c.Err
				return
			}
			// Keep recovered error values in the chain so the cascade's
			// callers can errors.Is/As on them (e.g. faultinject.ErrInjected
			// in resilience tests, sentinel errors from operators).
			if perr, ok := p.(error); ok {
				rel, err = nil, fmt.Errorf("engine: plan execution panic: %w", perr)
				return
			}
			rel, err = nil, fmt.Errorf("engine: plan execution panic: %v", p)
		}
	}()
	if analyze {
		if e.UsePhysical && e.UseBatch {
			var info rewrite.BatchExecInfo
			rel, ops, info, err = rewrite.ExecuteBatchAnalyzeContext(ctx, plan.Plan, env)
			e.recordBatchExec(info, report)
		} else {
			rel, ops, err = rewrite.ExecutePhysicalAnalyzeContext(ctx, plan.Plan, env)
		}
		if err == nil {
			rel, err = renamePhysical(rel, plan)
		}
		return rel, ops, err
	}
	if e.UsePhysical {
		if e.UseBatch {
			var info rewrite.BatchExecInfo
			rel, info, err = rewrite.ExecuteBatchContext(ctx, plan.Plan, env)
			e.recordBatchExec(info, report)
		} else {
			rel, err = rewrite.ExecutePhysicalContext(ctx, plan.Plan, env)
		}
		if err == nil {
			rel, err = renamePhysical(rel, plan)
		}
		return rel, nil, err
	}
	// The logical evaluator is materialized end-to-end; check the context
	// at the boundary rather than per tuple.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	rel, err = plan.Execute(env)
	return rel, nil, err
}

// recordBatchExec folds one batch execution's accounting into the engine
// counters (engine.batches / engine.batch_fallbacks) and the query's
// report, so the workload observatory sees per-fingerprint batch figures.
func (e *Engine) recordBatchExec(info rewrite.BatchExecInfo, report *Report) {
	m := e.m()
	if info.Batches > 0 {
		m.batches.Add(info.Batches)
		report.Batches += info.Batches
	}
	if info.Fallbacks > 0 {
		m.batchFallbacks.Add(info.Fallbacks)
		report.BatchFallbacks += info.Fallbacks
	}
}

// evalBase runs direct evaluation with panics recovered into errors: the
// base scan is the cascade's floor, so its failure must surface as a
// query error, never a crash.
func evalBase(pat *xam.Pattern, doc *xmltree.Document) (rel *algebra.Relation, err error) {
	defer func() {
		if p := recover(); p != nil {
			if perr, ok := p.(error); ok {
				rel, err = nil, fmt.Errorf("engine: base evaluation panic: %w", perr)
				return
			}
			rel, err = nil, fmt.Errorf("engine: base evaluation panic: %v", p)
		}
	}()
	return pat.Eval(doc)
}

// renamePhysical aligns a physically-executed plan's output with the query
// pattern's schema, as Rewriting.Execute does for the logical path —
// including nested collection schemas, which carry their own attribute
// names inside each tuple.
func renamePhysical(rel *algebra.Relation, rw *rewrite.Rewriting) (*algebra.Relation, error) {
	return rw.AlignSchema(rel)
}

func applyJoin(r *algebra.Relation, j xquery.ValueJoin) (*algebra.Relation, error) {
	li := r.Schema.Index(j.LeftAttr)
	ri := r.Schema.Index(j.RightAttr)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("engine: join attribute %q/%q missing", j.LeftAttr, j.RightAttr)
	}
	ops := map[string]algebra.Cmp{"=": algebra.Eq, "!=": algebra.Ne, "<": algebra.Lt,
		"<=": algebra.Le, ">": algebra.Gt, ">=": algebra.Ge}
	op, ok := ops[j.Op]
	if !ok {
		return nil, fmt.Errorf("engine: unsupported comparator %q", j.Op)
	}
	out := algebra.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if op.Apply(t[li], t[ri]) {
			out.Add(t)
		}
	}
	return out, nil
}

// Explain plans a query without executing it — and without materializing
// anything: plan search runs over the views' patterns and the path summary
// only, so Explain on a cold catalog is read-only and cheap. It shares the
// rewriting cache with the query path, so a warm Explain skips the
// containment search too.
func (e *Engine) Explain(src string) (*Report, error) {
	return e.ExplainContext(context.Background(), src)
}

// ExplainContext is Explain under a context; the plan search for each
// pattern starts only while the context is live.
func (e *Engine) ExplainContext(ctx context.Context, src string) (*Report, error) {
	if e.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.QueryTimeout)
		defer cancel()
	}
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	ex, err := xquery.Extract(q)
	if err != nil {
		return nil, err
	}
	report := &Report{}
	for i, pat := range ex.Patterns {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return nil, err
		}
		desc := "base scan (direct evaluation)"
		pe := st.plan()
		if len(pe.views) > 0 {
			plans, err := e.compileRewritings(pe, pat, report, nil, nil)
			if err != nil {
				return nil, err
			}
			if len(plans) > 0 {
				desc = plans[0].Plan.String()
			} else if !e.FallbackToBase {
				desc = "NO PLAN"
			}
		}
		report.Plans = append(report.Plans, desc)
	}
	return report, nil
}
