// Package engine assembles the full ULoad-style prototype (§1.2, §5.1): a
// catalog of documents with their path summaries, a set of XAM-described
// storage structures / materialized views per document, and a query
// processor that extracts patterns from XQuery (Chapter 3), rewrites each
// pattern over the registered XAMs under summary constraints (Chapters 4–5),
// and executes the chosen plans — achieving physical data independence:
// changing the storage means changing the registered XAM set, never the
// engine.
//
// The engine is goroutine-safe: QueryContext / ExplainContext / Analyze may
// run concurrently with each other and with view registration. The
// configuration fields (FallbackToBase, UsePhysical, QueryTimeout, Opts,
// Metrics) must be set before the engine starts serving concurrent traffic.
// Every query is measured through the internal/obs observability layer:
// engine-level counters and latency histograms in Metrics, and a per-query
// trace span tree attached to the Report.
package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/obs"
	"xamdb/internal/physical"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
	"xamdb/internal/xquery"
)

// docState groups what the engine knows about one document. doc and summary
// are immutable after registration; mu guards the view set and the lazily
// built rewriter / materialized extents.
type docState struct {
	doc     *xmltree.Document
	summary *summary.Summary

	mu        sync.RWMutex
	views     []*rewrite.View
	viewNames map[string]bool // registered view/module names, for dup rejection
	env       rewrite.Env
	rewriter  *rewrite.Rewriter // rebuilt lazily when views change
	// materialized marks that the rewriter's view extents have been merged
	// into env. It is set only after a successful Materialize, so a failed
	// materialization is retried on the next query instead of leaving later
	// queries to execute over an environment with no extents.
	materialized bool
}

func (st *docState) hasViews() bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.views) > 0
}

// plannerLocked returns the rewriter, building it if the view set changed.
// Building is pure planning state — no document access, no extent
// materialization — so Explain stays read-only and cheap. Callers hold mu.
func (st *docState) plannerLocked(opts rewrite.Options) *rewrite.Rewriter {
	if st.rewriter == nil {
		st.rewriter = rewrite.NewRewriter(st.summary, st.views, opts)
		st.materialized = false
	}
	return st.rewriter
}

// Engine is the query processor.
type Engine struct {
	mu   sync.RWMutex
	docs map[string]*docState

	// FallbackToBase lets queries run by direct evaluation when no
	// rewriting exists (equivalent to registering the trivial node store).
	FallbackToBase bool
	// UsePhysical executes rewritten plans through the §1.2.3 physical
	// operators (StackTree joins over sorted inputs) instead of the
	// materialized logical evaluator.
	UsePhysical bool
	// QueryTimeout bounds each Query/QueryContext call; 0 means no limit.
	// It composes with any deadline already on the caller's context (the
	// earlier one wins).
	QueryTimeout time.Duration
	Opts         rewrite.Options
	// Metrics receives the engine's counters and latency histograms (see
	// DESIGN.md "Observability" for the metric names). New wires a fresh
	// registry; nil falls back to the process-wide obs.Default().
	Metrics *obs.Registry
}

// New creates an empty engine that falls back to base evaluation. The
// optimizer stops after a handful of plans per pattern; raise Opts.MaxPlans
// to explore exhaustively.
func New() *Engine {
	return &Engine{
		docs:           map[string]*docState{},
		FallbackToBase: true,
		Opts:           rewrite.Options{MaxPlans: 3},
		Metrics:        obs.NewRegistry(),
	}
}

func (e *Engine) metrics() *obs.Registry {
	if e.Metrics != nil {
		return e.Metrics
	}
	return obs.Default()
}

// LoadDocument parses and registers a document, building its summary.
func (e *Engine) LoadDocument(name, content string) error {
	doc, err := xmltree.Parse(name, content)
	if err != nil {
		return err
	}
	e.AddDocument(doc)
	return nil
}

// AddDocument registers an already-parsed document.
func (e *Engine) AddDocument(doc *xmltree.Document) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.docs[doc.Name] = &docState{
		doc:       doc,
		summary:   summary.Build(doc),
		viewNames: map[string]bool{},
		env:       rewrite.Env{},
	}
}

// Document returns a registered document, or nil.
func (e *Engine) Document(name string) *xmltree.Document {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if st, ok := e.docs[name]; ok {
		return st.doc
	}
	return nil
}

// Summary returns a document's path summary, or nil.
func (e *Engine) Summary(name string) *summary.Summary {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if st, ok := e.docs[name]; ok {
		return st.summary
	}
	return nil
}

func (e *Engine) state(doc string) (*docState, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st, ok := e.docs[doc]
	if !ok {
		return nil, fmt.Errorf("engine: unknown document %q", doc)
	}
	return st, nil
}

// RegisterView materializes a XAM over the document and makes it available
// to the optimizer. Changing the storage = changing the registered XAM set.
// A name already registered for the document is rejected: silently
// shadowing an extent in the environment would make the optimizer execute
// one view's plan over another view's tuples.
func (e *Engine) RegisterView(doc, name, pat string) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	p, err := xam.Parse(pat)
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.viewNames[name] {
		return fmt.Errorf("engine: duplicate view %q for document %q", name, doc)
	}
	st.views = append(st.views, &rewrite.View{Name: name, Pattern: p})
	st.viewNames[name] = true
	st.rewriter = nil
	st.materialized = false
	return nil
}

// RegisterStore adds every module of a storage scheme as a view. Module
// names must not collide with already-registered views or modules of the
// same document; on collision nothing is registered.
func (e *Engine) RegisterStore(doc string, store *storage.Store) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	views := store.Views()
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, v := range views {
		if st.viewNames[v.Name] {
			return fmt.Errorf("engine: duplicate view %q (module of store %q) for document %q",
				v.Name, store.Name, doc)
		}
	}
	st.views = append(st.views, views...)
	for _, v := range views {
		st.viewNames[v.Name] = true
	}
	for name, rel := range store.Env() {
		st.env[name] = rel
	}
	st.rewriter = nil
	st.materialized = false
	return nil
}

// plannerFor returns (building if needed) the document's rewriter without
// materializing any extent — the read-only planning half of rewriterFor,
// which is all Explain needs.
func (e *Engine) plannerFor(st *docState) *rewrite.Rewriter {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.plannerLocked(e.Opts)
}

// rewriterFor returns the document's rewriter and a snapshot of its
// execution environment, materializing view extents on first use. The
// materialized flag is set only on success, so a failed materialization
// degrades this query and is retried on the next one — it is never cached
// as a rewriter whose views have no extents.
func (e *Engine) rewriterFor(st *docState) (*rewrite.Rewriter, rewrite.Env, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rw := st.plannerLocked(e.Opts)
	if !st.materialized {
		start := time.Now()
		env, err := rw.Materialize(st.doc)
		e.metrics().Histogram("engine.materialize_ns").Since(start)
		if err != nil {
			return nil, nil, err
		}
		for name, rel := range env {
			if _, have := st.env[name]; !have {
				st.env[name] = rel
			}
		}
		st.materialized = true
	}
	// Snapshot the env so plan execution reads it without holding the lock
	// while a concurrent RegisterStore mutates the live map.
	env := make(rewrite.Env, len(st.env))
	for name, rel := range st.env {
		env[name] = rel
	}
	return rw, env, nil
}

// Degradation records one step down the fallback cascade: a plan that
// failed at execution time and what the engine did about it.
type Degradation struct {
	Pattern int    // index into Report.Patterns
	Plan    string // the plan that failed
	Err     string // why it failed
}

// Report describes how a query was answered.
type Report struct {
	Patterns []string // extracted query patterns
	Plans    []string // chosen plan per pattern ("base scan" for fallback)
	// Degradations lists every plan that failed at execution time and was
	// replaced by the next-best rewriting or the base scan. Empty for a
	// cleanly-answered query.
	Degradations []Degradation
	// Trace is the query's span tree (parse → extract → per-pattern
	// materialize/rewrite/execute), attached by QueryContext.
	Trace *obs.Trace
	// Ops holds one EXPLAIN ANALYZE operator tree per pattern, populated
	// only by Analyze/AnalyzeContext.
	Ops []*physical.OpStats
}

// Degraded reports whether any pattern was answered by a fallback after
// its preferred plan failed.
func (r *Report) Degraded() bool { return len(r.Degradations) > 0 }

// String renders the report. It tolerates partial reports (a pattern
// recorded but its plan not yet chosen when the query failed), so the
// telemetry of an aborted query is still printable.
func (r *Report) String() string {
	var sb strings.Builder
	for i := range r.Patterns {
		plan := "(none: query did not complete)"
		if i < len(r.Plans) {
			plan = r.Plans[i]
		}
		fmt.Fprintf(&sb, "pattern %d: %s\n  plan: %s\n", i+1, r.Patterns[i], plan)
		for _, d := range r.Degradations {
			if d.Pattern == i {
				fmt.Fprintf(&sb, "  degraded: plan %s failed: %s\n", d.Plan, d.Err)
			}
		}
	}
	return sb.String()
}

// AnalyzeString renders the EXPLAIN ANALYZE view: per pattern, the chosen
// plan and its operator tree annotated with rows, timings and checkpoint
// polls. Patterns without an operator tree (not run under Analyze) fall
// back to the plain report line.
func (r *Report) AnalyzeString() string {
	var sb strings.Builder
	for i := range r.Patterns {
		plan := "(none: query did not complete)"
		if i < len(r.Plans) {
			plan = r.Plans[i]
		}
		fmt.Fprintf(&sb, "pattern %d: %s\n  plan: %s\n", i+1, r.Patterns[i], plan)
		if i < len(r.Ops) && r.Ops[i] != nil {
			for _, line := range strings.Split(strings.TrimRight(r.Ops[i].String(), "\n"), "\n") {
				fmt.Fprintf(&sb, "  %s\n", line)
			}
		}
	}
	return sb.String()
}

// Query parses, plans and executes an XQuery, returning the serialized XML
// result and the planning report.
func (e *Engine) Query(src string) (string, *Report, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query under a context: cancellation and deadlines abort
// planning and execution (physical plans stop at their next cancellation
// checkpoint). A non-zero QueryTimeout is applied on top of ctx. On error
// the partial *Report gathered so far is returned alongside it, so
// degradation telemetry is never discarded.
func (e *Engine) QueryContext(ctx context.Context, src string) (string, *Report, error) {
	return e.run(ctx, src, false)
}

// Analyze is Query with per-operator instrumentation (EXPLAIN ANALYZE):
// rewritten plans execute through the physical engine wrapped in
// physical.Instrument nodes, and Report.Ops carries one operator tree per
// pattern, annotated with rows, time and checkpoint polls.
func (e *Engine) Analyze(src string) (string, *Report, error) {
	return e.AnalyzeContext(context.Background(), src)
}

// AnalyzeContext is Analyze under a context.
func (e *Engine) AnalyzeContext(ctx context.Context, src string) (string, *Report, error) {
	return e.run(ctx, src, true)
}

// run is the shared query path of QueryContext and AnalyzeContext.
func (e *Engine) run(ctx context.Context, src string, analyze bool) (out string, report *Report, err error) {
	m := e.metrics()
	m.Counter("engine.queries").Inc()
	m.Gauge("engine.inflight").Add(1)
	start := time.Now()
	tr := obs.NewTrace("query")
	report = &Report{Trace: tr}
	defer func() {
		tr.End()
		m.Gauge("engine.inflight").Add(-1)
		m.Histogram("engine.query_ns").Since(start)
		m.Histogram("engine.fallback_depth").Observe(int64(len(report.Degradations)))
		if report.Degraded() {
			m.Counter("engine.queries_degraded").Inc()
		}
		if err != nil {
			m.Counter("engine.query_errors").Inc()
		}
	}()
	if e.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.QueryTimeout)
		defer cancel()
	}
	span := tr.StartSpan(nil, "parse")
	q, err := xquery.Parse(src)
	span.End()
	if err != nil {
		return "", report, err
	}
	span = tr.StartSpan(nil, "extract")
	ex, err := xquery.Extract(q)
	span.End()
	if err != nil {
		return "", report, err
	}
	var combined *algebra.Relation
	for i, pat := range ex.Patterns {
		if err := ctx.Err(); err != nil {
			return "", report, err
		}
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return "", report, err
		}
		pspan := tr.StartSpan(nil, fmt.Sprintf("pattern[%d]", i))
		rel, planDesc, ops, err := e.answerPattern(ctx, st, i, pat, report, tr, pspan, analyze)
		pspan.End()
		if err != nil {
			return "", report, err
		}
		report.Plans = append(report.Plans, planDesc)
		if analyze {
			report.Ops = append(report.Ops, ops)
		}
		if combined == nil {
			combined = rel
		} else {
			combined = algebra.Product(combined, rel)
		}
	}
	span = tr.StartSpan(nil, "serialize")
	defer span.End()
	for _, j := range ex.Joins {
		combined, err = applyJoin(combined, j)
		if err != nil {
			return "", report, err
		}
	}
	nodes, err := algebra.XMLize(combined, ex.Template)
	if err != nil {
		return "", report, err
	}
	return algebra.SerializeNodes(nodes), report, nil
}

// ctxErr reports whether err carries a context cancellation: those abort
// the query instead of triggering the fallback cascade.
func ctxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// answerPattern rewrites one query pattern over the document's views, and
// walks the fallback cascade on execution failure: next-best rewriting →
// base scan. Every step down is recorded in report.Degradations and in the
// engine's metrics. Only context cancellation and base-scan failure abort
// the query.
func (e *Engine) answerPattern(ctx context.Context, st *docState, patIdx int, pat *xam.Pattern, report *Report, tr *obs.Trace, pspan *obs.Span, analyze bool) (*algebra.Relation, string, *physical.OpStats, error) {
	m := e.metrics()
	degrade := func(plan string, err error) {
		m.Counter("engine.degradations").Inc()
		report.Degradations = append(report.Degradations,
			Degradation{Pattern: patIdx, Plan: plan, Err: err.Error()})
	}
	if st.hasViews() {
		mspan := tr.StartSpan(pspan, "materialize")
		rw, env, err := e.rewriterFor(st)
		mspan.End()
		if err != nil {
			// A failed view materialization leaves the rewritings unusable;
			// fall through to the base scan (the document itself is intact).
			degrade("(view materialization)", err)
		} else {
			rspan := tr.StartSpan(pspan, "rewrite")
			rwStart := time.Now()
			plans, err := rw.Rewrite(pat)
			m.Histogram("engine.rewrite_ns").Since(rwStart)
			rspan.End()
			if err != nil {
				degrade("(rewriting search)", err)
			}
			for _, plan := range plans {
				m.Counter("engine.plans_tried").Inc()
				espan := tr.StartSpan(pspan, "execute")
				exStart := time.Now()
				rel, ops, err := e.execPlan(ctx, plan, env, analyze)
				m.Histogram("engine.execute_ns").Since(exStart)
				espan.End()
				if err == nil {
					return rel, plan.Plan.String(), ops, nil
				}
				if ctxErr(err) || ctx.Err() != nil {
					return nil, "", nil, err
				}
				degrade(plan.Plan.String(), err)
			}
		}
	}
	if !e.FallbackToBase {
		return nil, "", nil, fmt.Errorf("engine: no rewriting for pattern %s", pat)
	}
	if err := ctx.Err(); err != nil {
		return nil, "", nil, err
	}
	m.Counter("engine.base_scans").Inc()
	bspan := tr.StartSpan(pspan, "execute")
	exStart := time.Now()
	rel, err := evalBase(pat, st.doc)
	exTime := time.Since(exStart)
	m.Histogram("engine.execute_ns").ObserveDuration(exTime)
	bspan.End()
	if err != nil {
		return nil, "", nil, err
	}
	var ops *physical.OpStats
	if analyze {
		ops = &physical.OpStats{
			Label:     "base scan (direct evaluation)",
			Rows:      int64(rel.Len()),
			NextCalls: int64(rel.Len()),
			Time:      exTime,
		}
	}
	return rel, "base scan (direct evaluation)", ops, nil
}

// execPlan executes one rewriting with panics recovered into errors, so an
// operator bug in a plan degrades to the next plan instead of killing the
// process. Cancellation panics keep their context error. With analyze set,
// the plan runs through the instrumented physical path and the operator
// stats tree is returned.
func (e *Engine) execPlan(ctx context.Context, plan *rewrite.Rewriting, env rewrite.Env, analyze bool) (rel *algebra.Relation, ops *physical.OpStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(*physical.Cancelled); ok {
				rel, err = nil, c.Err
				return
			}
			// Keep recovered error values in the chain so the cascade's
			// callers can errors.Is/As on them (e.g. faultinject.ErrInjected
			// in resilience tests, sentinel errors from operators).
			if perr, ok := p.(error); ok {
				rel, err = nil, fmt.Errorf("engine: plan execution panic: %w", perr)
				return
			}
			rel, err = nil, fmt.Errorf("engine: plan execution panic: %v", p)
		}
	}()
	if analyze {
		rel, ops, err = rewrite.ExecutePhysicalAnalyzeContext(ctx, plan.Plan, env)
		if err == nil {
			rel, err = renamePhysical(rel, plan)
		}
		return rel, ops, err
	}
	if e.UsePhysical {
		rel, err = rewrite.ExecutePhysicalContext(ctx, plan.Plan, env)
		if err == nil {
			rel, err = renamePhysical(rel, plan)
		}
		return rel, nil, err
	}
	// The logical evaluator is materialized end-to-end; check the context
	// at the boundary rather than per tuple.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	rel, err = plan.Execute(env)
	return rel, nil, err
}

// evalBase runs direct evaluation with panics recovered into errors: the
// base scan is the cascade's floor, so its failure must surface as a
// query error, never a crash.
func evalBase(pat *xam.Pattern, doc *xmltree.Document) (rel *algebra.Relation, err error) {
	defer func() {
		if p := recover(); p != nil {
			if perr, ok := p.(error); ok {
				rel, err = nil, fmt.Errorf("engine: base evaluation panic: %w", perr)
				return
			}
			rel, err = nil, fmt.Errorf("engine: base evaluation panic: %v", p)
		}
	}()
	return pat.Eval(doc)
}

// renamePhysical aligns a physically-executed plan's output with the query
// pattern's schema, as Rewriting.Execute does for the logical path.
func renamePhysical(rel *algebra.Relation, rw *rewrite.Rewriting) (*algebra.Relation, error) {
	want := rw.Query.Schema()
	if len(rel.Schema.Attrs) != len(want.Attrs) {
		return nil, fmt.Errorf("engine: physical output shape mismatch: %s vs %s", rel.Schema, want)
	}
	out := algebra.NewRelation(want)
	out.Tuples = rel.Tuples
	return out, nil
}

func applyJoin(r *algebra.Relation, j xquery.ValueJoin) (*algebra.Relation, error) {
	li := r.Schema.Index(j.LeftAttr)
	ri := r.Schema.Index(j.RightAttr)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("engine: join attribute %q/%q missing", j.LeftAttr, j.RightAttr)
	}
	ops := map[string]algebra.Cmp{"=": algebra.Eq, "!=": algebra.Ne, "<": algebra.Lt,
		"<=": algebra.Le, ">": algebra.Gt, ">=": algebra.Ge}
	op, ok := ops[j.Op]
	if !ok {
		return nil, fmt.Errorf("engine: unsupported comparator %q", j.Op)
	}
	out := algebra.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if op.Apply(t[li], t[ri]) {
			out.Add(t)
		}
	}
	return out, nil
}

// Explain plans a query without executing it — and without materializing
// anything: plan search runs over the views' patterns and the path summary
// only, so Explain on a cold catalog is read-only and cheap.
func (e *Engine) Explain(src string) (*Report, error) {
	return e.ExplainContext(context.Background(), src)
}

// ExplainContext is Explain under a context; the plan search for each
// pattern starts only while the context is live.
func (e *Engine) ExplainContext(ctx context.Context, src string) (*Report, error) {
	if e.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.QueryTimeout)
		defer cancel()
	}
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	ex, err := xquery.Extract(q)
	if err != nil {
		return nil, err
	}
	report := &Report{}
	for i, pat := range ex.Patterns {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return nil, err
		}
		desc := "base scan (direct evaluation)"
		if st.hasViews() {
			rw := e.plannerFor(st)
			plans, err := rw.Rewrite(pat)
			if err != nil {
				return nil, err
			}
			if len(plans) > 0 {
				desc = plans[0].Plan.String()
			} else if !e.FallbackToBase {
				desc = "NO PLAN"
			}
		}
		report.Plans = append(report.Plans, desc)
	}
	return report, nil
}
