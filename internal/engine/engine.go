// Package engine assembles the full ULoad-style prototype (§1.2, §5.1): a
// catalog of documents with their path summaries, a set of XAM-described
// storage structures / materialized views per document, and a query
// processor that extracts patterns from XQuery (Chapter 3), rewrites each
// pattern over the registered XAMs under summary constraints (Chapters 4–5),
// and executes the chosen plans — achieving physical data independence:
// changing the storage means changing the registered XAM set, never the
// engine.
package engine

import (
	"fmt"
	"strings"

	"xamdb/internal/algebra"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
	"xamdb/internal/xquery"
)

// docState groups what the engine knows about one document.
type docState struct {
	doc      *xmltree.Document
	summary  *summary.Summary
	views    []*rewrite.View
	env      rewrite.Env
	rewriter *rewrite.Rewriter // rebuilt lazily when views change
}

// Engine is the query processor.
type Engine struct {
	docs map[string]*docState
	// FallbackToBase lets queries run by direct evaluation when no
	// rewriting exists (equivalent to registering the trivial node store).
	FallbackToBase bool
	// UsePhysical executes rewritten plans through the §1.2.3 physical
	// operators (StackTree joins over sorted inputs) instead of the
	// materialized logical evaluator.
	UsePhysical bool
	Opts        rewrite.Options
}

// New creates an empty engine that falls back to base evaluation. The
// optimizer stops after a handful of plans per pattern; raise Opts.MaxPlans
// to explore exhaustively.
func New() *Engine {
	return &Engine{
		docs:           map[string]*docState{},
		FallbackToBase: true,
		Opts:           rewrite.Options{MaxPlans: 3},
	}
}

// LoadDocument parses and registers a document, building its summary.
func (e *Engine) LoadDocument(name, content string) error {
	doc, err := xmltree.Parse(name, content)
	if err != nil {
		return err
	}
	e.AddDocument(doc)
	return nil
}

// AddDocument registers an already-parsed document.
func (e *Engine) AddDocument(doc *xmltree.Document) {
	e.docs[doc.Name] = &docState{
		doc:     doc,
		summary: summary.Build(doc),
		env:     rewrite.Env{},
	}
}

// Document returns a registered document, or nil.
func (e *Engine) Document(name string) *xmltree.Document {
	if st, ok := e.docs[name]; ok {
		return st.doc
	}
	return nil
}

// Summary returns a document's path summary, or nil.
func (e *Engine) Summary(name string) *summary.Summary {
	if st, ok := e.docs[name]; ok {
		return st.summary
	}
	return nil
}

func (e *Engine) state(doc string) (*docState, error) {
	st, ok := e.docs[doc]
	if !ok {
		return nil, fmt.Errorf("engine: unknown document %q", doc)
	}
	return st, nil
}

// RegisterView materializes a XAM over the document and makes it available
// to the optimizer. Changing the storage = changing the registered XAM set.
func (e *Engine) RegisterView(doc, name, pat string) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	p, err := xam.Parse(pat)
	if err != nil {
		return err
	}
	st.views = append(st.views, &rewrite.View{Name: name, Pattern: p})
	st.rewriter = nil
	return nil
}

// RegisterStore adds every module of a storage scheme as a view.
func (e *Engine) RegisterStore(doc string, store *storage.Store) error {
	st, err := e.state(doc)
	if err != nil {
		return err
	}
	st.views = append(st.views, store.Views()...)
	for name, rel := range store.Env() {
		st.env[name] = rel
	}
	st.rewriter = nil
	return nil
}

// rewriterFor returns (building if needed) the document's rewriter and env.
func (e *Engine) rewriterFor(st *docState) (*rewrite.Rewriter, rewrite.Env, error) {
	if st.rewriter == nil {
		st.rewriter = rewrite.NewRewriter(st.summary, st.views, e.Opts)
		// Materialize any views that have no extent yet.
		env, err := st.rewriter.Materialize(st.doc)
		if err != nil {
			return nil, nil, err
		}
		for name, rel := range env {
			if _, have := st.env[name]; !have {
				st.env[name] = rel
			}
		}
	}
	return st.rewriter, st.env, nil
}

// Report describes how a query was answered.
type Report struct {
	Patterns []string // extracted query patterns
	Plans    []string // chosen plan per pattern ("base scan" for fallback)
}

func (r *Report) String() string {
	var sb strings.Builder
	for i := range r.Patterns {
		fmt.Fprintf(&sb, "pattern %d: %s\n  plan: %s\n", i+1, r.Patterns[i], r.Plans[i])
	}
	return sb.String()
}

// Query parses, plans and executes an XQuery, returning the serialized XML
// result and the planning report.
func (e *Engine) Query(src string) (string, *Report, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return "", nil, err
	}
	ex, err := xquery.Extract(q)
	if err != nil {
		return "", nil, err
	}
	report := &Report{}
	var combined *algebra.Relation
	for i, pat := range ex.Patterns {
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return "", nil, err
		}
		rel, planDesc, err := e.answerPattern(st, pat)
		if err != nil {
			return "", nil, err
		}
		report.Plans = append(report.Plans, planDesc)
		if combined == nil {
			combined = rel
		} else {
			combined = algebra.Product(combined, rel)
		}
	}
	for _, j := range ex.Joins {
		combined, err = applyJoin(combined, j)
		if err != nil {
			return "", nil, err
		}
	}
	nodes, err := algebra.XMLize(combined, ex.Template)
	if err != nil {
		return "", nil, err
	}
	return algebra.SerializeNodes(nodes), report, nil
}

// answerPattern rewrites one query pattern over the document's views, or
// falls back to base evaluation.
func (e *Engine) answerPattern(st *docState, pat *xam.Pattern) (*algebra.Relation, string, error) {
	if len(st.views) > 0 {
		rw, env, err := e.rewriterFor(st)
		if err != nil {
			return nil, "", err
		}
		plans, err := rw.Rewrite(pat)
		if err != nil {
			return nil, "", err
		}
		if len(plans) > 0 {
			var rel *algebra.Relation
			if e.UsePhysical {
				rel, err = rewrite.ExecutePhysical(plans[0].Plan, env)
				if err == nil {
					rel, err = renamePhysical(rel, plans[0])
				}
			} else {
				rel, err = plans[0].Execute(env)
			}
			if err != nil {
				return nil, "", err
			}
			return rel, plans[0].Plan.String(), nil
		}
	}
	if !e.FallbackToBase {
		return nil, "", fmt.Errorf("engine: no rewriting for pattern %s", pat)
	}
	rel, err := pat.Eval(st.doc)
	if err != nil {
		return nil, "", err
	}
	return rel, "base scan (direct evaluation)", nil
}

// renamePhysical aligns a physically-executed plan's output with the query
// pattern's schema, as Rewriting.Execute does for the logical path.
func renamePhysical(rel *algebra.Relation, rw *rewrite.Rewriting) (*algebra.Relation, error) {
	want := rw.Query.Schema()
	if len(rel.Schema.Attrs) != len(want.Attrs) {
		return nil, fmt.Errorf("engine: physical output shape mismatch: %s vs %s", rel.Schema, want)
	}
	out := algebra.NewRelation(want)
	out.Tuples = rel.Tuples
	return out, nil
}

func applyJoin(r *algebra.Relation, j xquery.ValueJoin) (*algebra.Relation, error) {
	li := r.Schema.Index(j.LeftAttr)
	ri := r.Schema.Index(j.RightAttr)
	if li < 0 || ri < 0 {
		return nil, fmt.Errorf("engine: join attribute %q/%q missing", j.LeftAttr, j.RightAttr)
	}
	ops := map[string]algebra.Cmp{"=": algebra.Eq, "!=": algebra.Ne, "<": algebra.Lt,
		"<=": algebra.Le, ">": algebra.Gt, ">=": algebra.Ge}
	op, ok := ops[j.Op]
	if !ok {
		return nil, fmt.Errorf("engine: unsupported comparator %q", j.Op)
	}
	out := algebra.NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if op.Apply(t[li], t[ri]) {
			out.Add(t)
		}
	}
	return out, nil
}

// Explain plans a query without executing it.
func (e *Engine) Explain(src string) (*Report, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	ex, err := xquery.Extract(q)
	if err != nil {
		return nil, err
	}
	report := &Report{}
	for i, pat := range ex.Patterns {
		report.Patterns = append(report.Patterns, pat.String())
		st, err := e.state(ex.DocNames[i])
		if err != nil {
			return nil, err
		}
		desc := "base scan (direct evaluation)"
		if len(st.views) > 0 {
			rw, _, err := e.rewriterFor(st)
			if err != nil {
				return nil, err
			}
			plans, err := rw.Rewrite(pat)
			if err != nil {
				return nil, err
			}
			if len(plans) > 0 {
				desc = plans[0].Plan.String()
			} else if !e.FallbackToBase {
				desc = "NO PLAN"
			}
		}
		report.Plans = append(report.Plans, desc)
	}
	return report, nil
}
