package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPlanCache is the smoke test for the plan-cache BENCH export: the
// report must cover every workload query, show the cache actually hitting
// on the warm runs, demonstrate lazy materialization in the first-query
// sweep, and round-trip through WriteJSON.
func TestPlanCache(t *testing.T) {
	rep, err := PlanCache(context.Background(), PlanCacheConfig{Iters: 2, Workers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(obsWorkload) {
		t.Fatalf("got %d query rows, want %d", len(rep.Queries), len(obsWorkload))
	}
	for _, r := range rep.Queries {
		if r.ColdNS <= 0 || r.WarmP50NS <= 0 || r.WarmMinNS > r.WarmP50NS {
			t.Fatalf("latency row inconsistent: %+v", r)
		}
	}
	if rep.Metrics == nil || rep.Metrics.Counters["engine.plan_cache_hits"] == 0 {
		t.Fatalf("warm workload must hit the plan cache: %+v", rep.Metrics)
	}
	if len(rep.Throughput) != 2 || rep.Throughput[0].Workers != 1 || rep.Throughput[0].QPS <= 0 {
		t.Fatalf("throughput sweep wrong: %+v", rep.Throughput)
	}
	if len(rep.FirstQuery) == 0 {
		t.Fatal("first-query sweep missing")
	}
	for _, r := range rep.FirstQuery {
		if r.ViewsMaterialized != 1 {
			t.Fatalf("lazy engine must materialize exactly one view at any catalog size: %+v", r)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_plancache.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PlanCacheReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH JSON must round-trip: %v", err)
	}
	if back.Experiment != "plancache" || len(back.Queries) != len(rep.Queries) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
