package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"xamdb/internal/engine"
	"xamdb/internal/obs"
	"xamdb/internal/physical"
	"xamdb/internal/storage"
)

// ObsConfig sizes the observability benchmark. The zero value is the CI
// smoke configuration.
type ObsConfig struct {
	Iters      int // repetitions per query (default 3)
	Goroutines int // concurrent workers for the throughput section (default 4)
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.Iters <= 0 {
		c.Iters = 3
	}
	if c.Goroutines <= 0 {
		c.Goroutines = 4
	}
	return c
}

// ObsQueryRow is one workload query's latency summary in the BENCH JSON.
type ObsQueryRow struct {
	Query string `json:"query"`
	Plan  string `json:"plan"`
	Iters int    `json:"iters"`
	AvgNS int64  `json:"avg_ns"`
	MinNS int64  `json:"min_ns"`
	MaxNS int64  `json:"max_ns"`
}

// ObsConcurrency is the concurrent-throughput section of the BENCH JSON.
type ObsConcurrency struct {
	Goroutines int     `json:"goroutines"`
	Queries    int     `json:"queries"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	QPS        float64 `json:"qps"`
}

// ObsOverhead quantifies the monitoring tax: warm p50 latency of the same
// query on an engine with the query log disabled versus one with the query
// log enabled while a background scraper renders the Prometheus exposition.
// The acceptance bar for the serving layer is OverheadPct <= 5.
type ObsOverhead struct {
	Samples        int     `json:"samples"`
	BaselineP50NS  int64   `json:"baseline_p50_ns"`
	MonitoredP50NS int64   `json:"monitored_p50_ns"`
	OverheadPct    float64 `json:"overhead_pct"`
}

// ObsReport is the xambench observability export — the engine's bench JSON
// trajectory (BENCH_*.json): per-query latencies, one EXPLAIN ANALYZE
// operator tree, one query trace, a concurrent-throughput measurement, the
// query-log/scrape overhead comparison, and the full engine metrics
// snapshot. Schema documented in DESIGN.md "Observability".
type ObsReport struct {
	Experiment  string            `json:"experiment"`
	Dataset     string            `json:"dataset"`
	Store       string            `json:"store"`
	Queries     []ObsQueryRow     `json:"queries"`
	Analyze     *physical.OpStats `json:"explain_analyze"`
	Trace       json.RawMessage   `json:"trace"`
	Concurrency ObsConcurrency    `json:"concurrency"`
	Overhead    *ObsOverhead      `json:"overhead"`
	Metrics     *obs.Snapshot     `json:"metrics"`
}

// obsWorkload is the query mix driven over the DBLP stand-in.
var obsWorkload = []string{
	`doc("dblp.xml")//article/title`,
	`doc("dblp.xml")//article/author`,
	`for $x in doc("dblp.xml")//article where $x/year = "1999" return <r>{$x/title}</r>`,
	`doc("dblp.xml")//book/title`,
}

// obsViews are content-bearing XAMs answering the workload's title/author
// lookups by rewriting; the tag-partitioned store's {id, val} modules cannot
// serve the serialized-content ({cont}) attribute those patterns ask for, so
// without these every workload query would take the base-scan path and the
// benchmark would never exercise the rewrite/materialize/execute spans.
// The article views carry structural IDs and v_article_year stores the year
// value, so the predicate query (year = "1999") is answered by absorbing the
// predicate into a view selection and nest-joining titles — the whole
// workload runs with engine.base_scans == 0 (asserted by the bench test).
var obsViews = map[string]string{
	"v_article_title":  `// article{id s}(/ title{cont})`,
	"v_article_author": `// article{id s}(/ author{cont})`,
	"v_book_title":     `// book(/ title{cont})`,
	"v_article_year":   `// article{id s}(/ year{id s, val})`,
	"v_title":          `// title{id s, cont}`,
}

// QueryObservability measures the engine's query path end to end: it loads
// the DBLP dataset with a tag-partitioned store plus the content views, runs
// the workload repeatedly (recording per-query latency and the chosen
// plans), captures one EXPLAIN ANALYZE tree and one trace, then drives the
// workload from cfg.Goroutines workers for the throughput row, and finally
// snapshots the engine metrics registry.
func QueryObservability(ctx context.Context, cfg ObsConfig) (*ObsReport, error) {
	cfg = cfg.withDefaults()
	e, dataset, store, err := newObsEngine()
	if err != nil {
		return nil, err
	}
	rep := &ObsReport{
		Experiment: "observability",
		Dataset:    dataset,
		Store:      store,
	}

	for _, q := range obsWorkload {
		row := ObsQueryRow{Query: q, Iters: cfg.Iters, MinNS: int64(^uint64(0) >> 1)}
		var sum int64
		for i := 0; i < cfg.Iters; i++ {
			start := time.Now()
			_, qrep, err := e.QueryContext(ctx, q)
			lat := time.Since(start).Nanoseconds()
			if err != nil {
				return nil, fmt.Errorf("bench: query %q: %w", q, err)
			}
			sum += lat
			if lat < row.MinNS {
				row.MinNS = lat
			}
			if lat > row.MaxNS {
				row.MaxNS = lat
			}
			if i == 0 && len(qrep.Plans) > 0 {
				row.Plan = qrep.Plans[0]
			}
		}
		row.AvgNS = sum / int64(cfg.Iters)
		rep.Queries = append(rep.Queries, row)
	}

	// One EXPLAIN ANALYZE tree and one trace for the first workload query.
	_, arep, err := e.AnalyzeContext(ctx, obsWorkload[0])
	if err != nil {
		return nil, err
	}
	if len(arep.Ops) > 0 {
		rep.Analyze = arep.Ops[0]
	}
	if arep.Trace != nil {
		data, err := arep.Trace.JSON()
		if err != nil {
			return nil, err
		}
		rep.Trace = data
	}

	// Concurrent throughput: every worker runs the whole workload Iters
	// times against the shared engine.
	var wg sync.WaitGroup
	errc := make(chan error, cfg.Goroutines)
	total := cfg.Goroutines * cfg.Iters * len(obsWorkload)
	start := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cfg.Iters; i++ {
				for _, q := range obsWorkload {
					if _, _, err := e.QueryContext(ctx, q); err != nil {
						errc <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, fmt.Errorf("bench: concurrent workload: %w", err)
	}
	elapsed := time.Since(start)
	rep.Concurrency = ObsConcurrency{
		Goroutines: cfg.Goroutines,
		Queries:    total,
		ElapsedNS:  elapsed.Nanoseconds(),
		QPS:        float64(total) / elapsed.Seconds(),
	}
	rep.Overhead, err = measureOverhead(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep.Metrics = e.Metrics.Snapshot()
	return rep, nil
}

// newObsEngine builds the benchmark fixture: the DBLP stand-in over a
// tag-partitioned store plus the content views.
func newObsEngine() (*engine.Engine, string, string, error) {
	d := DBLPDataset()
	e := engine.New()
	e.AddDocument(d.Doc)
	st, err := storage.TagPartitioned(d.Doc)
	if err != nil {
		return nil, "", "", err
	}
	if err := e.RegisterStore(d.Doc.Name, st); err != nil {
		return nil, "", "", err
	}
	for name, pat := range obsViews {
		if err := e.RegisterView(d.Doc.Name, name, pat); err != nil {
			return nil, "", "", err
		}
	}
	return e, d.Name, st.Name, nil
}

// measureOverhead compares warm p50 latencies of the first workload query on
// two fresh engines: a baseline with the query log disabled, and a monitored
// one with the default query log plus a background scraper that repeatedly
// syncs the state gauges and renders the Prometheus exposition — the worst
// realistic monitoring pressure a live deployment sees.
func measureOverhead(ctx context.Context, cfg ObsConfig) (*ObsOverhead, error) {
	samples := cfg.Iters * 200
	q := obsWorkload[0]
	p50 := func(e *engine.Engine) (int64, error) {
		for i := 0; i < 5; i++ { // warm: materialize views, fill the plan cache
			if _, _, err := e.QueryContext(ctx, q); err != nil {
				return 0, err
			}
		}
		lats := make([]int64, samples)
		for i := range lats {
			start := time.Now()
			if _, _, err := e.QueryContext(ctx, q); err != nil {
				return 0, err
			}
			lats[i] = time.Since(start).Nanoseconds()
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2], nil
	}

	base, _, _, err := newObsEngine()
	if err != nil {
		return nil, err
	}
	base.QueryLog = nil
	baseP50, err := p50(base)
	if err != nil {
		return nil, fmt.Errorf("bench: overhead baseline: %w", err)
	}

	mon, _, _, err := newObsEngine()
	if err != nil {
		return nil, err
	}
	stop := make(chan struct{})
	var swg sync.WaitGroup
	swg.Add(1)
	go func() {
		defer swg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mon.SyncStateGauges()
			_ = mon.Registry().Snapshot().WriteProm(io.Discard)
			time.Sleep(2 * time.Millisecond)
		}
	}()
	monP50, err := p50(mon)
	close(stop)
	swg.Wait()
	if err != nil {
		return nil, fmt.Errorf("bench: overhead monitored: %w", err)
	}

	oh := &ObsOverhead{Samples: samples, BaselineP50NS: baseP50, MonitoredP50NS: monP50}
	if baseP50 > 0 {
		oh.OverheadPct = 100 * float64(monP50-baseP50) / float64(baseP50)
	}
	return oh, nil
}

// WriteJSON writes the report as indented JSON (the BENCH_*.json format).
func (r *ObsReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
