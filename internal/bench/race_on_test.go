//go:build race

package bench

// raceEnabled mirrors the race detector's build tag: instrumentation slows
// the per-tuple residual filter far more than the traversal-bound base
// path, so speedup thresholds are relaxed under -race.
const raceEnabled = true
