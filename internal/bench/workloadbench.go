package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"xamdb/internal/engine"
	"xamdb/internal/obs"
)

// WorkloadConfig sizes the workload-observatory benchmark. The zero value
// is the CI smoke configuration.
type WorkloadConfig struct {
	Queries int // Zipf-distributed query draws (default 3000)
	Iters   int // overhead sample multiplier (default 3)
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Queries <= 0 {
		c.Queries = 3000
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	return c
}

// workloadZipfS is the skew of the driven query mix: s≈1.2 concentrates
// roughly half the draws on rank 0 over a ten-rank vocabulary, the usual
// shape of a production hot set.
const workloadZipfS = 1.2

// workloadMix is the rank-ordered query vocabulary the Zipf generator draws
// from. Rank 0 is the planted pattern: hot, and deliberately NOT covered by
// any registered view (obsViews has nothing over inproceedings), so every
// execution base-scans — the advisor must surface it as the top
// materialization candidate with zero hints. The middle ranks are served by
// the obsViews content modules; the tail ranks are rare base-scanning
// lookups that must NOT outrank the planted pattern.
var workloadMix = []string{
	`doc("dblp.xml")//inproceedings/booktitle`, // rank 0: planted hot, unserved
	`doc("dblp.xml")//article/title`,           // served by v_article_title
	`doc("dblp.xml")//article/author`,          // served by v_article_author
	`doc("dblp.xml")//book/title`,              // served by v_book_title
	`for $x in doc("dblp.xml")//article where $x/year = "1999" return <r>{$x/title}</r>`,
	`doc("dblp.xml")//phdthesis/school`,    // cold tail, base scans
	`doc("dblp.xml")//mastersthesis/school`, // cold tail, base scans
	`doc("dblp.xml")//www/url`,              // cold tail, base scans
	`doc("dblp.xml")//book/publisher`,       // cold tail, base scans
	`doc("dblp.xml")//article/journal`,      // cold tail, base scans
}

// workloadColdView is registered but referenced by no winning plan in the
// mix: the advisor's cold-view list must carry it as "registered but
// unused".
const workloadColdView = `// cite{cont}`

// WorkloadMixRow is one vocabulary rank's draw count in the BENCH JSON.
type WorkloadMixRow struct {
	Rank  int    `json:"rank"`
	Query string `json:"query"`
	Draws int    `json:"draws"`
}

// WorkloadReport is the xambench workload export (BENCH_workload.json): the
// Zipfian mix actually driven, the observatory's aggregate snapshot, the
// advisor's report, and the two pass/fail verdicts CI greps for —
// advisor_top_match (the planted hot unserved pattern is the #1
// materialization candidate) and overhead_ok (workload fold-in costs <= 5%
// of the warm p50). Failures lists every violated expectation; an empty
// list is the pass condition.
type WorkloadReport struct {
	Experiment      string                `json:"experiment"`
	Dataset         string                `json:"dataset"`
	Store           string                `json:"store"`
	Queries         int                   `json:"queries"`
	ZipfS           float64               `json:"zipf_s"`
	Mix             []WorkloadMixRow      `json:"mix"`
	PlantedQuery    string                `json:"planted_query"`
	Workload        *obs.WorkloadSnapshot `json:"workload"`
	Advisor         *obs.AdvisorReport    `json:"advisor"`
	AdvisorTopMatch bool                  `json:"advisor_top_match"`
	Overhead        *ObsOverhead          `json:"overhead"`
	OverheadOK      bool                  `json:"overhead_ok"`
	Failures        []string              `json:"failures"`
}

// workloadOverheadBarPct is the acceptance bar on the fold-in tax,
// measured uninstrumented (the CI gate runs through `go run`; the -race
// test suite tolerates overhead failures, since the detector multiplies
// mutex costs without slowing the traversal-bound query path to match).
const workloadOverheadBarPct = 5.0

// WorkloadObservatory drives a Zipf-skewed query mix over the DBLP fixture
// (the obsViews engine plus one deliberately unused view), then interrogates
// the observatory the way an operator would: does the aggregate table
// account every query, does the advisor rank the planted hot unserved
// pattern first with zero hints, is the cold view called out, and does the
// fold-in stay under the overhead bar? Expectation violations land in
// Report.Failures (the report is still returned for inspection); only
// operational errors return err.
func WorkloadObservatory(ctx context.Context, cfg WorkloadConfig) (*WorkloadReport, error) {
	cfg = cfg.withDefaults()
	e, dataset, store, err := newWorkloadEngine()
	if err != nil {
		return nil, err
	}
	rep := &WorkloadReport{
		Experiment:   "workload",
		Dataset:      dataset,
		Store:        store,
		Queries:      cfg.Queries,
		ZipfS:        workloadZipfS,
		PlantedQuery: workloadMix[0],
	}

	// Warm every vocabulary entry first (extents materialized, plan cache
	// filled), then reset the observatory: cold planning and one-off view
	// builds belong to startup, and folding them into a short run would let
	// a single materialization spike outscore the genuinely hot pattern.
	// The observatory measures the steady-state mix, like the other benches.
	for _, q := range workloadMix {
		for i := 0; i < 2; i++ {
			if _, _, err := e.QueryContext(ctx, q); err != nil {
				return nil, fmt.Errorf("bench: workload warmup %q: %w", q, err)
			}
		}
	}
	e.Workload = obs.NewWorkloadStats(engine.DefaultWorkloadTopK)

	// Drive the skewed mix. A fixed seed keeps the draw histogram (and the
	// report) reproducible; rank 0 is the most frequent by construction.
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, workloadZipfS, 1, uint64(len(workloadMix)-1))
	draws := make([]int, len(workloadMix))
	for i := 0; i < cfg.Queries; i++ {
		rank := int(zipf.Uint64())
		draws[rank]++
		if _, _, err := e.QueryContext(ctx, workloadMix[rank]); err != nil {
			return nil, fmt.Errorf("bench: workload rank %d %q: %w", rank, workloadMix[rank], err)
		}
	}
	for rank, q := range workloadMix {
		rep.Mix = append(rep.Mix, WorkloadMixRow{Rank: rank, Query: q, Draws: draws[rank]})
	}

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}

	// The aggregate table must account every draw exactly once.
	snap := e.Workload.Snapshot()
	rep.Workload = snap
	if snap.TotalQueries != int64(cfg.Queries) {
		fail("observatory accounted %d queries, drove %d", snap.TotalQueries, cfg.Queries)
	}
	var hottest int64
	if len(snap.Fingerprints) > 0 {
		hottest = snap.Fingerprints[0].Count
	}
	if hottest != int64(draws[0]) {
		fail("hottest fingerprint count %d, want the planted pattern's %d draws", hottest, draws[0])
	}

	// The advisor, with zero hints, must rank the planted hot unserved
	// pattern as the #1 materialization candidate and call out the cold view.
	// MaxColdViews is sized past the tag-partitioned store's per-tag modules
	// (all honestly "registered but unused" for this content workload) so
	// the planted v_cite still fits in the name-sorted list.
	adv := e.Advise(obs.AdvisorOptions{MaxCandidates: 10, MaxColdViews: 64})
	rep.Advisor = adv
	if len(adv.Candidates) > 0 && strings.Contains(adv.Candidates[0].Query, "inproceedings/booktitle") {
		rep.AdvisorTopMatch = true
	} else {
		fail("advisor top candidate is not the planted pattern: %+v", adv.Candidates)
	}
	coldSeen := false
	for _, cv := range adv.ColdViews {
		if cv.View == "v_cite" {
			coldSeen = true
		}
	}
	if !coldSeen {
		fail("advisor cold views miss the unused v_cite: %+v", adv.ColdViews)
	}

	// Fold-in tax: warm p50 of a view-served lookup with the observatory
	// disabled versus enabled. Same query log on both sides, so the delta
	// is the Observe() fold-in alone.
	rep.Overhead, err = measureWorkloadOverhead(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if bar := workloadOverheadBarPct; rep.Overhead.OverheadPct <= bar {
		rep.OverheadOK = true
	} else {
		fail("fold-in overhead %.2f%% exceeds %.0f%% bar (baseline %s, observed %s)",
			rep.Overhead.OverheadPct, bar,
			time.Duration(rep.Overhead.BaselineP50NS), time.Duration(rep.Overhead.MonitoredP50NS))
	}
	return rep, nil
}

// newWorkloadEngine is the obsViews fixture plus the planted cold view.
func newWorkloadEngine() (*engine.Engine, string, string, error) {
	e, dataset, store, err := newObsEngine()
	if err != nil {
		return nil, "", "", err
	}
	if err := e.RegisterView("dblp.xml", "v_cite", workloadColdView); err != nil {
		return nil, "", "", err
	}
	return e, dataset, store, nil
}

// measureWorkloadOverhead compares warm p50 latencies of the rank-1
// view-served lookup on two fresh engines: observatory off (Workload nil)
// versus on. Each side takes the best of two measurement rounds so a
// scheduler hiccup on either side does not masquerade as fold-in cost.
func measureWorkloadOverhead(ctx context.Context, cfg WorkloadConfig) (*ObsOverhead, error) {
	samples := cfg.Iters * 200
	q := workloadMix[1]
	p50 := func(e *engine.Engine) (int64, error) {
		for i := 0; i < 5; i++ { // warm: materialize views, fill the plan cache
			if _, _, err := e.QueryContext(ctx, q); err != nil {
				return 0, err
			}
		}
		best := int64(0)
		for round := 0; round < 2; round++ {
			lats := make([]int64, samples)
			for i := range lats {
				start := time.Now()
				if _, _, err := e.QueryContext(ctx, q); err != nil {
					return 0, err
				}
				lats[i] = time.Since(start).Nanoseconds()
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			if p := lats[len(lats)/2]; round == 0 || p < best {
				best = p
			}
		}
		return best, nil
	}

	base, _, _, err := newWorkloadEngine()
	if err != nil {
		return nil, err
	}
	base.Workload = nil
	baseP50, err := p50(base)
	if err != nil {
		return nil, fmt.Errorf("bench: workload overhead baseline: %w", err)
	}

	mon, _, _, err := newWorkloadEngine()
	if err != nil {
		return nil, err
	}
	monP50, err := p50(mon)
	if err != nil {
		return nil, fmt.Errorf("bench: workload overhead observed: %w", err)
	}

	oh := &ObsOverhead{Samples: samples * 2, BaselineP50NS: baseP50, MonitoredP50NS: monP50}
	if baseP50 > 0 {
		oh.OverheadPct = 100 * float64(monP50-baseP50) / float64(baseP50)
	}
	return oh, nil
}

// WriteJSON writes the report as indented JSON (the BENCH_*.json format).
func (r *WorkloadReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
