package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xamdb/internal/admission"
	"xamdb/internal/obs"
	"xamdb/internal/serve"
)

// AdmissionConfig sizes the admission-control load experiment. The zero
// value is the CI smoke configuration: a deliberately tiny pool so the open
// loop saturates it in well under a second.
type AdmissionConfig struct {
	Workers        int           // query workers (default 2)
	QueueDepth     int           // admission queue bound (default 2×workers)
	QueueTimeout   time.Duration // shed threshold for queue waits (default 100ms)
	ClosedClients  int           // closed-loop clients for the capacity probe (default 8)
	ClosedDuration time.Duration // closed-loop measurement window (default 400ms)
	OpenDuration   time.Duration // open-loop window past saturation (default 600ms)
	RateMultiple   float64       // open-loop offered rate as a multiple of measured capacity (default 2.5)
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.ClosedClients <= 0 {
		c.ClosedClients = 8
	}
	if c.ClosedDuration <= 0 {
		c.ClosedDuration = 400 * time.Millisecond
	}
	if c.OpenDuration <= 0 {
		c.OpenDuration = 600 * time.Millisecond
	}
	if c.RateMultiple <= 1 {
		c.RateMultiple = 2.5
	}
	return c
}

// AdmissionClosedLoop is the capacity-probe section of the report: N
// back-to-back clients, no pacing — the server runs at its natural rate.
type AdmissionClosedLoop struct {
	Clients   int     `json:"clients"`
	Served    int64   `json:"served"`
	Shed      int64   `json:"shed"`
	ElapsedNS int64   `json:"elapsed_ns"`
	QPS       float64 `json:"qps"`
}

// AdmissionOpenLoop is the past-saturation section: arrivals at a fixed
// offered rate regardless of completions, the regime where an unbounded
// server melts and a bounded one sheds.
type AdmissionOpenLoop struct {
	OfferedQPS float64          `json:"offered_qps"`
	Sent       int64            `json:"sent"`
	Statuses   map[string]int64 `json:"statuses"`
	ElapsedNS  int64            `json:"elapsed_ns"`
}

// AdmissionReport is the xambench admission export (BENCH_admission.json).
// Failures lists every violated invariant; an empty list is the pass
// condition the CI load-smoke step gates on.
type AdmissionReport struct {
	Experiment       string              `json:"experiment"`
	Workers          int                 `json:"workers"`
	QueueDepth       int                 `json:"queue_depth"`
	QueueTimeoutNS   int64               `json:"queue_timeout_ns"`
	Closed           AdmissionClosedLoop `json:"closed_loop"`
	Open             AdmissionOpenLoop   `json:"open_loop"`
	WaitP99NS        int64               `json:"wait_p99_ns"`
	Stats            admission.Stats     `json:"stats"`
	ClientTotal      int64               `json:"client_total"`
	GoroutinesBefore int                 `json:"goroutines_before"`
	GoroutinesAfter  int                 `json:"goroutines_after"`
	Failures         []string            `json:"failures"`
}

// admissionQuery is the workload: a view-answered title scan, heavy enough
// to queue under load, light enough for a sub-second experiment.
const admissionQuery = `{"query":"doc(\"dblp.xml\")//article/title"}`

// AdmissionLoad drives the full serving stack — HTTP, admission queue,
// worker pool, engine — first closed-loop to measure capacity, then
// open-loop past saturation, and verifies the robustness invariants:
//
//   - accounting: every client request has exactly one admission outcome
//     (client total == submitted == accounted), nothing silently dropped;
//   - shedding: every response is 200 or 429, and every 429 carries
//     Retry-After — overload is explicit, not an error soup;
//   - bounded queueing: p99 queue wait stays within 2× the shed threshold;
//   - stability: the goroutine count is flat after the storm.
//
// Violations land in Report.Failures and are returned as an error.
func AdmissionLoad(ctx context.Context, cfg AdmissionConfig) (*AdmissionReport, error) {
	cfg = cfg.withDefaults()
	e, _, _, err := newObsEngine()
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	ctrl := admission.New(admission.Config{
		Workers:         cfg.Workers,
		QueueDepth:      cfg.QueueDepth,
		QueueTimeout:    cfg.QueueTimeout,
		DefaultDeadline: 10 * time.Second,
		DrainTimeout:    5 * time.Second,
		Metrics:         reg,
	})
	ts := httptest.NewServer(serve.NewWithQuery(e, ctrl).Handler())
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 30 * time.Second

	rep := &AdmissionReport{
		Experiment:     "admission",
		Workers:        cfg.Workers,
		QueueDepth:     cfg.QueueDepth,
		QueueTimeoutNS: int64(cfg.QueueTimeout),
	}

	// Warm the engine (materialize views, fill the plan cache) so the
	// capacity probe measures the steady state, not cold starts.
	for i := 0; i < 3; i++ {
		code, err := postOnce(client, ts.URL)
		if err != nil {
			return nil, fmt.Errorf("bench: admission warmup: %w", err)
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("bench: admission warmup: unexpected status %d", code)
		}
	}
	rep.GoroutinesBefore = runtime.NumGoroutine()

	var statuses sync.Map // status code → *atomic.Int64
	tally := func(code int) {
		v, _ := statuses.LoadOrStore(code, new(atomic.Int64))
		v.(*atomic.Int64).Add(1)
	}
	var sent, served, shed, transportErrs atomic.Int64
	var missingRetryAfter atomic.Int64
	doOne := func() {
		sent.Add(1)
		resp, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(admissionQuery))
		if err != nil {
			transportErrs.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		tally(resp.StatusCode)
		switch resp.StatusCode {
		case http.StatusOK:
			served.Add(1)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				missingRetryAfter.Add(1)
			}
		}
	}

	// Closed loop: clients issue back-to-back until the window closes.
	closedStart := time.Now()
	closedStop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.ClosedClients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-closedStop:
					return
				case <-ctx.Done():
					return
				default:
					doOne()
				}
			}
		}()
	}
	time.Sleep(cfg.ClosedDuration)
	close(closedStop)
	wg.Wait()
	closedElapsed := time.Since(closedStart)
	rep.Closed = AdmissionClosedLoop{
		Clients:   cfg.ClosedClients,
		Served:    served.Load(),
		Shed:      shed.Load(),
		ElapsedNS: closedElapsed.Nanoseconds(),
		QPS:       float64(served.Load()) / closedElapsed.Seconds(),
	}

	// Open loop: fixed arrival rate at a multiple of measured capacity —
	// past saturation by construction. Rate is clamped so CI boxes with
	// very fast or very slow engines stay in a sane envelope.
	offered := rep.Closed.QPS * cfg.RateMultiple
	if offered < 100 {
		offered = 100
	}
	if offered > 8000 {
		// Client-side ceiling: past ~8k arrivals/s the ticker and dialer
		// become the bottleneck before the server does.
		offered = 8000
	}
	openSentBase := sent.Load()
	interval := time.Duration(float64(time.Second) / offered)
	openStart := time.Now()
	ticker := time.NewTicker(interval)
	for time.Since(openStart) < cfg.OpenDuration && ctx.Err() == nil {
		<-ticker.C
		wg.Add(1)
		go func() {
			defer wg.Done()
			doOne()
		}()
	}
	ticker.Stop()
	wg.Wait()
	openElapsed := time.Since(openStart)
	rep.Open = AdmissionOpenLoop{
		OfferedQPS: offered,
		Sent:       sent.Load() - openSentBase,
		Statuses:   map[string]int64{},
		ElapsedNS:  openElapsed.Nanoseconds(),
	}
	statuses.Range(func(k, v any) bool {
		rep.Open.Statuses[fmt.Sprintf("%d", k.(int))] = v.(*atomic.Int64).Load()
		return true
	})

	// Quiesce, then snapshot the accounting and stability figures.
	client.CloseIdleConnections()
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	rep.GoroutinesAfter = runtime.NumGoroutine()
	rep.WaitP99NS = reg.Histogram(admission.MetricWaitNS).Quantile(0.99)
	rep.Stats = ctrl.Stats()
	rep.ClientTotal = sent.Load() - transportErrs.Load() + 3 // +3 warmup requests

	fail := func(format string, args ...any) {
		rep.Failures = append(rep.Failures, fmt.Sprintf(format, args...))
	}
	if n := transportErrs.Load(); n > 0 {
		fail("%d transport errors (requests lost before the server)", n)
	}
	if rep.Stats.Submitted != rep.Stats.Accounted() {
		fail("unaccounted requests: submitted=%d accounted=%d", rep.Stats.Submitted, rep.Stats.Accounted())
	}
	if rep.ClientTotal != rep.Stats.Submitted {
		fail("client/server mismatch: client saw %d responses, server admitted %d", rep.ClientTotal, rep.Stats.Submitted)
	}
	for code := range rep.Open.Statuses {
		if code != "200" && code != "429" && code != "503" {
			fail("unexpected status %s under load", code)
		}
	}
	if n := missingRetryAfter.Load(); n > 0 {
		fail("%d shed responses missing Retry-After", n)
	}
	if limit := 2*int64(cfg.QueueTimeout) + int64(100*time.Millisecond); rep.WaitP99NS > limit {
		fail("queue wait p99 %v exceeds bound %v", time.Duration(rep.WaitP99NS), time.Duration(limit))
	}
	if rep.GoroutinesAfter > rep.GoroutinesBefore+32 {
		fail("goroutines grew %d → %d across the storm", rep.GoroutinesBefore, rep.GoroutinesAfter)
	}
	if rep.Stats.Served == 0 {
		fail("nothing served — the load never reached the engine")
	}
	// When the offered rate genuinely exceeded capacity, overload must have
	// been shed explicitly (the clamped rate may stay under capacity on a
	// very fast box; then the assertion does not apply).
	if offered >= 1.5*rep.Closed.QPS && rep.Stats.ShedQueueFull+rep.Stats.ShedQueueTimeout == 0 {
		fail("offered %.0f qps over %.0f qps capacity but nothing was shed", offered, rep.Closed.QPS)
	}

	if err := ctrl.Drain(5 * time.Second); err != nil {
		fail("post-load drain: %v", err)
	}
	if len(rep.Failures) > 0 {
		return rep, fmt.Errorf("bench: admission invariants violated: %s", strings.Join(rep.Failures, "; "))
	}
	return rep, nil
}

// postOnce issues one workload request and returns its status code.
func postOnce(client *http.Client, base string) (int, error) {
	resp, err := client.Post(base+"/query", "application/json", strings.NewReader(admissionQuery))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// WriteJSON writes the report as indented JSON (the BENCH_*.json format).
func (r *AdmissionReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
