package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPredicateSweep is the acceptance test of predicate absorption: the
// absorbing engine must never touch the base document, the residual
// selection must be accounted, and at selective points (≤1%) the absorbed
// plan must be at least 10x faster than base evaluation.
func TestPredicateSweep(t *testing.T) {
	rep, err := PredicateSweep(context.Background(), PredConfig{Items: 50_000, Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != len(predSelectivities) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(predSelectivities))
	}
	if rep.BaseScans != 0 {
		t.Fatalf("engine.base_scans = %d, want 0 (plans: %+v)", rep.BaseScans, rep.Rows)
	}
	if rep.PredAbsorbed == 0 || rep.PredResidual == 0 {
		t.Fatalf("absorption counters empty: absorbed=%d residual=%d",
			rep.PredAbsorbed, rep.PredResidual)
	}
	// Race instrumentation taxes the per-tuple residual filter much harder
	// than the traversal-bound base path; the 10x bar applies to plain runs.
	minSpeedup := 10.0
	if raceEnabled {
		minSpeedup = 3.0
	}
	for _, r := range rep.Rows {
		if r.Plan == "" || r.BaseP50NS <= 0 || r.AbsorbedP50NS <= 0 {
			t.Fatalf("incomplete row: %+v", r)
		}
		if r.SelectivityPct <= 1 && r.Speedup < minSpeedup {
			t.Errorf("selectivity %.3f%%: speedup %.1fx < %.0fx (base %dns, absorbed %dns)",
				r.SelectivityPct, r.Speedup, minSpeedup, r.BaseP50NS, r.AbsorbedP50NS)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_predicates.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PredReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH JSON must round-trip: %v", err)
	}
	if back.Experiment != "predicates" || len(back.Rows) != len(rep.Rows) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
