package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"xamdb/internal/engine"
	"xamdb/internal/obs"
	"xamdb/internal/storage"
)

// PlanCacheConfig sizes the plan-cache benchmark. The zero value is the CI
// smoke configuration.
type PlanCacheConfig struct {
	Iters   int   // warm repetitions per query (default 20)
	Workers []int // throughput sweep sizes (default 1, 2, 4, 8)
}

func (c PlanCacheConfig) withDefaults() PlanCacheConfig {
	if c.Iters <= 0 {
		c.Iters = 20
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	return c
}

// PlanCacheQueryRow is one workload query's cold-vs-warm comparison: the
// first run pays the containment search (and any lazy materialization), the
// warm runs are served from the rewriting cache.
type PlanCacheQueryRow struct {
	Query     string `json:"query"`
	Plan      string `json:"plan"`
	ColdNS    int64  `json:"cold_ns"`
	WarmIters int    `json:"warm_iters"`
	WarmP50NS int64  `json:"warm_p50_ns"`
	WarmMinNS int64  `json:"warm_min_ns"`
}

// PlanCacheThroughputRow is one point of the worker sweep over the warm
// workload. Scaling is QPS relative to linear extrapolation from the first
// row's per-worker QPS, capped at the machine's parallelism — on a P-core
// box, w workers can at best run min(w, P) queries at once, so 1.0 means
// "as linear as this hardware allows" (the report carries GOMAXPROCS so
// the cap is visible).
type PlanCacheThroughputRow struct {
	Workers   int     `json:"workers"`
	Queries   int     `json:"queries"`
	ElapsedNS int64   `json:"elapsed_ns"`
	QPS       float64 `json:"qps"`
	Scaling   float64 `json:"scaling_vs_linear"`
}

// PlanCacheFirstQueryRow is one point of the lazy-materialization sweep: a
// cold engine with k registered views answers one query; with lazy extents
// the latency stays flat as k grows, because only the referenced view is
// materialized.
type PlanCacheFirstQueryRow struct {
	Views             int   `json:"views"`
	FirstQueryNS      int64 `json:"first_query_ns"`
	ViewsMaterialized int64 `json:"views_materialized"`
}

// PlanCacheReport is the xambench plan-cache export (BENCH_plancache.json):
// cold-vs-warm latency per workload query, the warm-path overhead relative
// to pure execution, throughput scaling across workers, the first-query
// sweep over growing view counts, and the engine metrics snapshot.
type PlanCacheReport struct {
	Experiment string              `json:"experiment"`
	Dataset    string              `json:"dataset"`
	Store      string              `json:"store"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Queries    []PlanCacheQueryRow `json:"queries"`
	// WarmVsExecuteP50 is the warm end-to-end p50 over all workload queries
	// divided by the engine.execute_ns p50 — how close a cached-plan query
	// gets to paying only for execution (1.0 = planning is free).
	WarmVsExecuteP50 float64                  `json:"warm_vs_execute_p50"`
	Throughput       []PlanCacheThroughputRow `json:"throughput"`
	FirstQuery       []PlanCacheFirstQueryRow `json:"first_query_by_views"`
	Metrics          *obs.Snapshot            `json:"metrics"`
}

// firstQueryViews are distinct content views over the DBLP summary used by
// the lazy-materialization sweep; each query matches exactly one of them.
var firstQueryViews = [][2]string{
	{"v_article_title", `// article(/ title{cont})`},
	{"v_article_author", `// article(/ author{cont})`},
	{"v_article_year", `// article(/ year{cont})`},
	{"v_article_journal", `// article(/ journal{cont})`},
	{"v_inproc_title", `// inproceedings(/ title{cont})`},
	{"v_inproc_author", `// inproceedings(/ author{cont})`},
	{"v_book_title", `// book(/ title{cont})`},
	{"v_www_title", `// www(/ title{cont})`},
}

func p50(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64{}, ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// newPlanCacheEngine assembles the benchmark catalog: the DBLP stand-in
// with a tag-partitioned store plus the content views (same setup as the
// observability benchmark, so the two reports are comparable).
func newPlanCacheEngine(d Dataset) (*engine.Engine, *storage.Store, error) {
	e := engine.New()
	e.AddDocument(d.Doc)
	st, err := storage.TagPartitioned(d.Doc)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterStore(d.Doc.Name, st); err != nil {
		return nil, nil, err
	}
	for name, pat := range obsViews {
		if err := e.RegisterView(d.Doc.Name, name, pat); err != nil {
			return nil, nil, err
		}
	}
	return e, st, nil
}

// PlanCache measures the warm planning path: cold-vs-warm latency per
// workload query (the warm runs hit the rewriting cache), throughput
// scaling across the worker sweep, and the first-query-latency sweep over
// growing view counts that demonstrates lazy per-view materialization.
func PlanCache(ctx context.Context, cfg PlanCacheConfig) (*PlanCacheReport, error) {
	cfg = cfg.withDefaults()
	d := DBLPDataset()
	e, st, err := newPlanCacheEngine(d)
	if err != nil {
		return nil, err
	}
	rep := &PlanCacheReport{
		Experiment: "plancache",
		Dataset:    d.Name,
		Store:      st.Name,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	var warmAll []int64
	for _, q := range obsWorkload {
		row := PlanCacheQueryRow{Query: q, WarmIters: cfg.Iters}
		start := time.Now()
		_, qrep, err := e.QueryContext(ctx, q)
		row.ColdNS = time.Since(start).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("bench: cold query %q: %w", q, err)
		}
		if len(qrep.Plans) > 0 {
			row.Plan = qrep.Plans[0]
		}
		warm := make([]int64, 0, cfg.Iters)
		for i := 0; i < cfg.Iters; i++ {
			start := time.Now()
			if _, _, err := e.QueryContext(ctx, q); err != nil {
				return nil, fmt.Errorf("bench: warm query %q: %w", q, err)
			}
			warm = append(warm, time.Since(start).Nanoseconds())
		}
		row.WarmP50NS = p50(warm)
		row.WarmMinNS = warm[0]
		for _, ns := range warm {
			if ns < row.WarmMinNS {
				row.WarmMinNS = ns
			}
		}
		warmAll = append(warmAll, warm...)
		rep.Queries = append(rep.Queries, row)
	}
	if execP50 := e.Metrics.Snapshot().Histograms["engine.execute_ns"].P50NS; execP50 > 0 {
		rep.WarmVsExecuteP50 = float64(p50(warmAll)) / float64(execP50)
	}

	// Throughput sweep over the warm engine: every worker loops the whole
	// workload Iters times; read-only queries plan lock-free off the shared
	// snapshot, so throughput should scale near-linearly.
	var base float64
	for _, workers := range cfg.Workers {
		var wg sync.WaitGroup
		errc := make(chan error, workers)
		total := workers * cfg.Iters * len(obsWorkload)
		start := time.Now()
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < cfg.Iters; i++ {
					for _, q := range obsWorkload {
						if _, _, err := e.QueryContext(ctx, q); err != nil {
							errc <- err
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		if err := <-errc; err != nil {
			return nil, fmt.Errorf("bench: throughput sweep (%d workers): %w", workers, err)
		}
		elapsed := time.Since(start)
		row := PlanCacheThroughputRow{
			Workers:   workers,
			Queries:   total,
			ElapsedNS: elapsed.Nanoseconds(),
			QPS:       float64(total) / elapsed.Seconds(),
		}
		if base == 0 {
			base = row.QPS / float64(min(workers, rep.GoMaxProcs))
		}
		row.Scaling = row.QPS / (base * float64(min(workers, rep.GoMaxProcs)))
		rep.Throughput = append(rep.Throughput, row)
	}

	// First-query sweep: a cold engine with k registered views answers one
	// query. Lazy extents keep the latency flat in k — only the view the
	// chosen plan references is materialized.
	for k := 1; k <= len(firstQueryViews); k *= 2 {
		ek := engine.New()
		ek.AddDocument(d.Doc)
		for _, v := range firstQueryViews[:k] {
			if err := ek.RegisterView(d.Doc.Name, v[0], v[1]); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if _, _, err := ek.QueryContext(ctx, obsWorkload[0]); err != nil {
			return nil, fmt.Errorf("bench: first-query sweep (k=%d): %w", k, err)
		}
		rep.FirstQuery = append(rep.FirstQuery, PlanCacheFirstQueryRow{
			Views:             k,
			FirstQueryNS:      time.Since(start).Nanoseconds(),
			ViewsMaterialized: ek.Metrics.Snapshot().Counters["engine.views_materialized"],
		})
	}

	rep.Metrics = e.Metrics.Snapshot()
	return rep, nil
}

// WriteJSON writes the report as indented JSON (the BENCH_*.json format).
func (r *PlanCacheReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
