package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestWorkloadObservatory is the CI smoke for BENCH_workload.json: the
// observatory must account every driven query, the advisor must rank the
// planted hot unserved pattern first with zero hints, the cold view must be
// called out, and the report must round-trip through WriteJSON with the
// grep-able verdict booleans. The overhead verdict is computed (and
// exported) but not asserted here — the 5% bar is measured by the CI
// workload-smoke step through an uninstrumented `go run`, where the race
// detector cannot distort the mutex-versus-traversal ratio.
func TestWorkloadObservatory(t *testing.T) {
	rep, err := WorkloadObservatory(context.Background(), WorkloadConfig{Queries: 400, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AdvisorTopMatch {
		t.Fatalf("advisor must rank the planted pattern first: failures %v\nadvisor %+v",
			rep.Failures, rep.Advisor)
	}
	for _, f := range rep.Failures {
		if !strings.Contains(f, "overhead") {
			t.Fatalf("unexpected failure: %s (all: %v)", f, rep.Failures)
		}
	}
	if rep.Workload == nil || rep.Workload.TotalQueries != 400 {
		t.Fatalf("observatory snapshot must account all 400 queries: %+v", rep.Workload)
	}
	if len(rep.Mix) != len(workloadMix) || rep.Mix[0].Draws <= rep.Mix[len(rep.Mix)-1].Draws {
		t.Fatalf("Zipf mix must concentrate on rank 0: %+v", rep.Mix)
	}
	if rep.Advisor == nil || len(rep.Advisor.ColdViews) == 0 {
		t.Fatalf("advisor must call out the cold view: %+v", rep.Advisor)
	}
	if o := rep.Overhead; o == nil || o.Samples == 0 || o.BaselineP50NS <= 0 || o.MonitoredP50NS <= 0 {
		t.Fatalf("overhead section empty: %+v", rep.Overhead)
	}

	path := filepath.Join(t.TempDir(), "BENCH_workload.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The CI step greps for these exact strings; pin the serialization.
	if !strings.Contains(string(data), `"advisor_top_match": true`) {
		t.Fatalf("JSON must carry the grep-able advisor verdict:\n%s", data)
	}
	var back WorkloadReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH JSON must round-trip: %v", err)
	}
	if back.Experiment != "workload" || back.PlantedQuery != workloadMix[0] {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
