package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestQueryObservability is the smoke test for the BENCH JSON export: the
// report must cover every workload query, carry an operator tree and trace,
// include the engine metrics snapshot, and round-trip through WriteJSON.
func TestQueryObservability(t *testing.T) {
	rep, err := QueryObservability(context.Background(), ObsConfig{Iters: 1, Goroutines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(obsWorkload) {
		t.Fatalf("got %d query rows, want %d", len(rep.Queries), len(obsWorkload))
	}
	for _, r := range rep.Queries {
		if r.AvgNS <= 0 || r.MinNS > r.MaxNS {
			t.Fatalf("latency row out of order: %+v", r)
		}
	}
	if rep.Analyze == nil || rep.Analyze.Rows == 0 {
		t.Fatalf("report must carry a non-empty EXPLAIN ANALYZE tree: %+v", rep.Analyze)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("report must carry a trace")
	}
	if rep.Concurrency.Queries == 0 || rep.Concurrency.QPS <= 0 {
		t.Fatalf("concurrency section empty: %+v", rep.Concurrency)
	}
	if o := rep.Overhead; o == nil || o.Samples == 0 || o.BaselineP50NS <= 0 || o.MonitoredP50NS <= 0 {
		t.Fatalf("overhead section empty: %+v", rep.Overhead)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["engine.queries"] == 0 {
		t.Fatalf("metrics snapshot must record queries: %+v", rep.Metrics)
	}
	// Predicate absorption: every workload query — including the value-
	// predicate FLWOR — must be answered from the views, never the base
	// document, and the predicate query must be counted as absorbed.
	if n := rep.Metrics.Counters["engine.base_scans"]; n != 0 {
		t.Fatalf("engine.base_scans = %d, want 0 (plans: %+v)", n, rep.Queries)
	}
	if rep.Metrics.Counters["engine.pred_absorbed"] == 0 {
		t.Fatal("the predicate query must be accounted as absorbed")
	}

	path := filepath.Join(t.TempDir(), "BENCH_observability.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ObsReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("BENCH JSON must round-trip: %v", err)
	}
	if back.Experiment != "observability" || len(back.Queries) != len(rep.Queries) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
