package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xamdb/internal/algebra"
	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/rewrite"
	"xamdb/internal/storage"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
	"xamdb/internal/xquery"
)

// RewriteRow is one line of the §5.6 rewriting study: time to find plans for
// a query pattern as the view set grows.
type RewriteRow struct {
	Views      int
	QueryNodes int
	PlansFound int
	Time       time.Duration
}

// RewriteScaling reproduces §5.6's shape: rewriting time as a function of
// the number of registered views and of the query pattern size. Each view
// set contains per-label fragment views able to answer the query (so plans
// exist), topped up with random noise views; growing the set measures how
// the search and its summary-based pruning scale.
func RewriteScaling(d Dataset, viewCounts []int, querySizes []int, seed int64) ([]RewriteRow, error) {
	var out []RewriteRow
	for _, vc := range viewCounts {
		for _, qn := range querySizes {
			q := goodPatterns(d.Summary, patgen.Config{Nodes: qn, Returns: 1, PPred: -1, POpt: -1}, 1, seed+int64(qn))[0]
			for _, n := range q.ReturnNodes() {
				n.StoreVal = true
			}
			views := fragmentViews(q)
			if len(views) < vc {
				views = append(views, syntheticViews(d, vc-len(views), seed)...)
			}
			rw := rewrite.NewRewriter(d.Summary, views, rewrite.Options{MaxPlans: 4})
			start := time.Now()
			plans, err := rw.Rewrite(q)
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			out = append(out, RewriteRow{Views: len(views), QueryNodes: q.Size(), PlansFound: len(plans), Time: elapsed})
		}
	}
	return out, nil
}

// fragmentViews builds one single-node view per query pattern node, storing
// a structural ID plus whatever the query needs there — the classic
// path/tag-partition fragments joins recombine.
func fragmentViews(q *xam.Pattern) []*rewrite.View {
	var out []*rewrite.View
	for i, n := range q.Nodes() {
		if n.Wildcard() {
			continue
		}
		v := &xam.Node{Name: "e1", Label: n.Label, IDSpec: xam.StructID,
			StoreVal: n.StoreVal, StoreCont: n.StoreCont, StoreTag: n.StoreTag}
		pat := &xam.Pattern{Top: []*xam.Edge{{Axis: xam.Descendant, Sem: xam.SemJoin, Child: v}}}
		out = append(out, &rewrite.View{Name: fmt.Sprintf("frag%d", i), Pattern: pat})
	}
	return out
}

// syntheticViews builds vc views: random patterns storing structural IDs and
// values, so joins and covers are plausible. Pathological all-wildcard views
// are excluded like in the containment experiments.
func syntheticViews(d Dataset, vc int, seed int64) []*rewrite.View {
	pats := goodPatterns(d.Summary, patgen.Config{Nodes: 3, Returns: 2, PPred: -1, POpt: -1}, vc, seed)
	views := make([]*rewrite.View, len(pats))
	for i, p := range pats {
		for _, n := range p.ReturnNodes() {
			n.StoreVal = true
		}
		views[i] = &rewrite.View{Name: fmt.Sprintf("v%d", i), Pattern: p}
	}
	return views
}

// QEPRow is one measured plan of a Chapter 2 storage comparison.
type QEPRow struct {
	Experiment string
	Variant    string
	Tuples     int
	Bytes      int
	Time       time.Duration
}

// StorageQEPs reproduces the Chapter 2 plan comparisons:
//
//   - QEP3 vs QEP1 (§2.1.1): a book-author-title style materialized view scan
//     against the join of per-tag modules.
//   - QEP9 vs QEP8 (§2.1.1): unfragmented content storage against
//     recomposition by navigation.
//   - QEP11 vs QEP10 (§2.1.2): composite-key index lookup against scan+filter.
//   - QEP13 vs QEP12 (§2.1.2): full-text index lookup against a contains()
//     scan.
func StorageQEPs() ([]QEPRow, error) {
	var out []QEPRow
	dblp := DBLPDataset()
	xmark := XMarkDataset()

	// --- QEP1 vs QEP3: join of tag modules vs exact materialized view.
	tagStore, err := storage.TagPartitioned(dblp.Doc)
	if err != nil {
		return nil, err
	}
	q := xam.MustParse(`// article{id s}(/ author{id s, val}, / title{id s, val})`)
	rwJoin := rewrite.NewRewriter(dblp.Summary, []*rewrite.View{
		{Name: "tag_article", Pattern: tagStore.Module("tag_article").Pattern},
		{Name: "tag_author", Pattern: tagStore.Module("tag_author").Pattern},
		{Name: "tag_title", Pattern: tagStore.Module("tag_title").Pattern},
	}, rewrite.Options{MaxPlans: 1})
	joinStore := &storage.Store{Modules: []*storage.Module{
		tagStore.Module("tag_article"), tagStore.Module("tag_author"), tagStore.Module("tag_title"),
	}}
	envJoin := joinStore.Env()
	row, err := timePlan("QEP1-vs-QEP3", "QEP1 tag-module joins", rwJoin, q, envJoin)
	if err != nil {
		return nil, err
	}
	out = append(out, row)

	viewStore := &storage.Store{Name: "view"}
	m, err := moduleFromPattern(dblp, "book_author_title", q)
	if err != nil {
		return nil, err
	}
	viewStore.Modules = append(viewStore.Modules, m)
	rwView := rewrite.NewRewriter(dblp.Summary, viewStore.Views(), rewrite.Options{MaxPlans: 1})
	row, err = timePlan("QEP1-vs-QEP3", "QEP3 materialized view scan", rwView, q, viewStore.Env())
	if err != nil {
		return nil, err
	}
	out = append(out, row)

	// --- QEP8 vs QEP9: recomposition vs content store for descriptions.
	start := time.Now()
	recomposed, err := xam.MustParse(`// description{id s, cont}`).Eval(xmark.Doc)
	if err != nil {
		return nil, err
	}
	out = append(out, QEPRow{
		Experiment: "QEP8-vs-QEP9", Variant: "QEP8 recomposition by navigation",
		Tuples: recomposed.Len(), Bytes: relBytes(recomposed), Time: time.Since(start),
	})
	content, err := storage.ContentStore(xmark.Doc, "description")
	if err != nil {
		return nil, err
	}
	mod := content.Module("content_description")
	start = time.Now()
	scanned := algebra.NewRelation(mod.Data.Schema)
	scanned.Add(mod.Data.Tuples...)
	out = append(out, QEPRow{
		Experiment: "QEP8-vs-QEP9", Variant: "QEP9 content-store scan",
		Tuples: scanned.Len(), Bytes: relBytes(scanned), Time: time.Since(start),
	})

	// --- QEP10 vs QEP11: scan+filter vs composite-key index.
	filter := xam.MustParse(`// article{id s}(/ year{val="1999"}, / title{val})`)
	start = time.Now()
	filtered, err := filter.Eval(dblp.Doc)
	if err != nil {
		return nil, err
	}
	out = append(out, QEPRow{
		Experiment: "QEP10-vs-QEP11", Variant: "QEP10 scan + filter",
		Tuples: filtered.Len(), Bytes: relBytes(filtered), Time: time.Since(start),
	})
	ix, err := storage.BuildIndex(dblp.Doc, "articlesByYear",
		`// article{id s}(/ year{val R}, / title{val})`)
	if err != nil {
		return nil, err
	}
	bs := ix.BindingSchema()
	bind := algebra.NewRelation(bs)
	bind.Add(algebra.Tuple{algebra.S("1999")})
	start = time.Now()
	looked, err := ix.Lookup(bind)
	if err != nil {
		return nil, err
	}
	out = append(out, QEPRow{
		Experiment: "QEP10-vs-QEP11", Variant: "QEP11 index lookup",
		Tuples: looked.Len(), Bytes: relBytes(looked), Time: time.Since(start),
	})

	// --- QEP12 vs QEP13: contains() scan vs full-text index.
	word := "web"
	start = time.Now()
	titles, err := xam.MustParse(`// title{id s, val}`).Eval(dblp.Doc)
	if err != nil {
		return nil, err
	}
	matches := 0
	for _, t := range titles.Tuples {
		if strings.Contains(strings.ToLower(t[1].Str), word) {
			matches++
		}
	}
	out = append(out, QEPRow{
		Experiment: "QEP12-vs-QEP13", Variant: "QEP12 contains() scan",
		Tuples: matches, Time: time.Since(start),
	})
	fti, err := storage.BuildFullTextIndex(dblp.Doc, "titleWords", `// title{id s, val}`)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	ids := fti.Lookup(word)
	out = append(out, QEPRow{
		Experiment: "QEP12-vs-QEP13", Variant: "QEP13 full-text index lookup",
		Tuples: len(ids), Time: time.Since(start),
	})
	return out, nil
}

func moduleFromPattern(d Dataset, name string, p *xam.Pattern) (*storage.Module, error) {
	data, err := p.Eval(d.Doc)
	if err != nil {
		return nil, err
	}
	return &storage.Module{Name: name, Pattern: p.Clone(), Data: data}, nil
}

func timePlan(exp, variant string, rw *rewrite.Rewriter, q *xam.Pattern, env rewrite.Env) (QEPRow, error) {
	plans, err := rw.Rewrite(q)
	if err != nil {
		return QEPRow{}, err
	}
	if len(plans) == 0 {
		return QEPRow{}, fmt.Errorf("%s/%s: no plan", exp, variant)
	}
	start := time.Now()
	rel, err := plans[0].Execute(env)
	if err != nil {
		return QEPRow{}, err
	}
	return QEPRow{
		Experiment: exp, Variant: variant + " [" + plans[0].Plan.String() + "]",
		Tuples: rel.Len(), Bytes: relBytes(rel), Time: time.Since(start),
	}, nil
}

func relBytes(r *algebra.Relation) int {
	n := 0
	for _, t := range r.Tuples {
		for _, v := range t {
			n += len(v.AsString())
		}
	}
	return n
}

// ExtractRow measures pattern extraction (Chapter 3) on one query.
type ExtractRow struct {
	Query        string
	Patterns     int // maximal patterns extracted
	PatternNodes int // total nodes across patterns
	XPathViews   int // baseline: single-return-node XPath views needed
	Time         time.Duration
}

// ExtractionStudy reproduces the Chapter 3 comparison: our maximal patterns
// versus the XPath-per-path baseline of previous works (§3.1: the Figure 3.1
// query needs only 2 maximal patterns where XPath-based approaches
// manipulate 7+ single-node views).
func ExtractionStudy() ([]ExtractRow, error) {
	queries := []string{
		// The Figure 3.1 query shape: three nested blocks, two variables
		// structurally unrelated.
		`for $x in doc("x.xml")//site/*, $y in doc("x.xml")//person return <res1>{$x//keyword,
		   <res2>{$y//emailaddress,
		     for $z in $y//address return <res3>{$z//city}</res3>}</res2>}</res1>`,
		`for $x in doc("x.xml")//item where $x/payment = "Creditcard" return <r>{$x/name/text()}</r>`,
		`for $x in doc("x.xml")//open_auction return <r>{$x/initial,
		   for $b in $x/bidder return <b>{$b/increase}</b>}</r>`,
		`doc("x.xml")//regions//item/name`,
	}
	var out []ExtractRow
	for _, src := range queries {
		q, err := xquery.Parse(src)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ex, err := xquery.Extract(q)
		elapsed := time.Since(start)
		if err != nil {
			return nil, err
		}
		nodes := 0
		xpath := 0
		for _, p := range ex.Patterns {
			nodes += p.Size()
			// The XPath baseline materializes one single-return-node view
			// per annotated node plus one per navigation root.
			for _, n := range p.Nodes() {
				if n.IsReturn() {
					xpath++
				}
			}
		}
		out = append(out, ExtractRow{
			Query:        strings.Join(strings.Fields(src), " "),
			Patterns:     len(ex.Patterns),
			PatternNodes: nodes,
			XPathViews:   xpath,
			Time:         elapsed,
		})
	}
	return out, nil
}

// ExecRow compares logical (materialized nested-loops) and physical
// (StackTree-based iterator) execution of the same structural-join plan.
type ExecRow struct {
	Items    int
	Logical  time.Duration
	Physical time.Duration
	Tuples   int
}

// ExecutionAblation measures the §1.2.3 motivation for the physical layer:
// the StackTree structural-join family against naive nested-loops evaluation
// of the same plan, as the document grows. The context bounds the sweep:
// physical execution aborts at its next cancellation checkpoint, and each
// scale starts only while the context is live — an interrupted benchmark
// run stops within one plan instead of finishing the matrix.
func ExecutionAblation(ctx context.Context, scales []int) ([]ExecRow, error) {
	var out []ExecRow
	for _, sc := range scales {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		doc := datagen.XMark(sc, sc*4, sc*3)
		sum := summaryOf(doc)
		views := []*rewrite.View{
			{Name: "items", Pattern: xam.MustParse(`// item{id s}`)},
			{Name: "keywords", Pattern: xam.MustParse(`// keyword{id s, val}`)},
		}
		rw := rewrite.NewRewriter(sum, views, rewrite.Options{MaxPlans: 1})
		env, err := rw.Materialize(doc)
		if err != nil {
			return nil, err
		}
		plans, err := rw.Rewrite(xam.MustParse(`// item{id s}(// keyword{id s, val})`))
		if err != nil {
			return nil, err
		}
		if len(plans) == 0 {
			return nil, fmt.Errorf("execution ablation: no plan at scale %d", sc)
		}
		plan := plans[0].Plan

		start := time.Now()
		logical, err := plan.Execute(env)
		if err != nil {
			return nil, err
		}
		lt := time.Since(start)

		start = time.Now()
		physical, err := rewrite.ExecutePhysicalContext(ctx, plan, env)
		if err != nil {
			return nil, err
		}
		pt := time.Since(start)
		if logical.Len() != physical.Len() {
			return nil, fmt.Errorf("execution ablation: results differ (%d vs %d)", logical.Len(), physical.Len())
		}
		out = append(out, ExecRow{Items: sc * 6, Logical: lt, Physical: pt, Tuples: logical.Len()})
	}
	return out, nil
}

func summaryOf(doc *xmltree.Document) *summary.Summary { return summary.Build(doc) }
