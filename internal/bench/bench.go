// Package bench implements the reproduction harness for every table and
// figure of the thesis's evaluation (see DESIGN.md's experiment index):
// Figure 4.13's dataset/summary statistics, Figure 4.14's XMark pattern
// containment (canonical model sizes and containment times, for the 20
// XMark query patterns and for synthetic patterns of 3–13 nodes), Figure
// 4.15's DBLP variant, the §4.6 optional-edge ablation, the §5.6 rewriting
// scaling study, the Chapter 2 QEP comparisons across storage schemes, and
// the Chapter 3 pattern extraction measurements. Both `go test -bench` and
// cmd/xambench drive these entry points.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"xamdb/internal/containment"
	"xamdb/internal/datagen"
	"xamdb/internal/patgen"
	"xamdb/internal/summary"
	"xamdb/internal/xam"
	"xamdb/internal/xmltree"
)

// Dataset is one synthetic stand-in for a Figure 4.13 data set.
type Dataset struct {
	Name    string
	Doc     *xmltree.Document
	Summary *summary.Summary
}

// Datasets builds the five data sets at the standard reproduction scale.
// The documents are far smaller than the thesis's (MB-scale), but the
// summary shapes — which drive containment and rewriting costs — match.
func Datasets() []Dataset {
	mk := func(name string, doc *xmltree.Document) Dataset {
		return Dataset{Name: name, Doc: doc, Summary: summary.Build(doc)}
	}
	return []Dataset{
		mk("Shakespeare", datagen.Shakespeare(5, 5)),
		mk("Nasa", datagen.Nasa(60)),
		mk("SwissProt", datagen.SwissProt(60)),
		mk("XMark", datagen.XMark(5, 20, 15)),
		mk("DBLP", datagen.DBLP(150)),
	}
}

// XMarkDataset builds only the XMark stand-in (the summary the containment
// experiments run against).
func XMarkDataset() Dataset {
	doc := datagen.XMark(5, 20, 15)
	return Dataset{Name: "XMark", Doc: doc, Summary: summary.Build(doc)}
}

// DBLPDataset builds only the DBLP stand-in.
func DBLPDataset() Dataset {
	doc := datagen.DBLP(150)
	return Dataset{Name: "DBLP", Doc: doc, Summary: summary.Build(doc)}
}

// SummaryRow is one line of the Figure 4.13 table.
type SummaryRow struct {
	Name       string
	Nodes      int // N: nodes in the document
	Paths      int // |S|
	StrongEdge int // n_s
	OneToOne   int // n_1
	MaxDepth   int
}

// SummaryStats reproduces Figure 4.13.
func SummaryStats() []SummaryRow {
	var out []SummaryRow
	for _, d := range Datasets() {
		st := d.Summary.Stats()
		out = append(out, SummaryRow{
			Name:       d.Name,
			Nodes:      d.Doc.Size(),
			Paths:      st.Paths,
			StrongEdge: st.StrongEdge,
			OneToOne:   st.OneToOne,
			MaxDepth:   st.MaxDepth,
		})
	}
	return out
}

// XMarkQueryPatternSources returns the tree-pattern essences of the 20 XMark
// benchmark queries over the XMark-like summary (the workload of Figure
// 4.14 top). Query 7 deliberately has structurally unrelated branches,
// reproducing the thesis's outlier with a large canonical model.
func XMarkQueryPatternSources() []string {
	return []string{
		/* Q1  */ `// people(/ person{id s}(/(s) @id{val="person0"}, / name{val}))`,
		/* Q2  */ `// open_auction{id s}(/ bidder(/ increase{val}))`,
		/* Q3  */ `// open_auction{id s}(/ bidder(/ increase{id s, val}), / reserve{val})`,
		/* Q4  */ `// open_auction{id s}(/ bidder(/ personref{id s}))`,
		/* Q5  */ `// closed_auctions(/ closed_auction(/ price{id s, val>=40}))`,
		/* Q6  */ `// regions(// item{id s})`,
		/* Q7  */ `// description{id s}, // annotation{id s}, // text{id s}`,
		/* Q8  */ `/ site(/ people(/ person{id s}(/ name{val})), / closed_auctions(/ closed_auction(/ buyer{id s})))`,
		/* Q9  */ `/ site(/ people(/ person{id s}), / closed_auctions(/ closed_auction(/ seller{id s}, / itemref{id s})))`,
		/* Q10 */ `// person{id s}(/(o) profile{id s}(/(o) interest{id s}))`,
		/* Q11 */ `/ site(/ people(/ person{id s}(/ profile(/(s) @income))), / open_auctions(/ open_auction(/ initial{id s, val})))`,
		/* Q12 */ `// person{id s}(/ profile{id s}(/ @income{val>=50000}))`,
		/* Q13 */ `// australia(/ item{id s}(/ name{val}, / description{cont}))`,
		/* Q14 */ `// item{id s}(/ name{val}, // text{val})`,
		/* Q15 */ `// closed_auction(/ annotation(/ description(/ parlist(/ listitem{id s}))))`,
		/* Q16 */ `// closed_auction{id s}(/ annotation(/ description(/ parlist(/ listitem))), / seller{id s})`,
		/* Q17 */ `// person{id s}(/ name{val}, /(o) phone{id s})`,
		/* Q18 */ `// open_auction(/ initial{id s, val})`,
		/* Q19 */ `// item{id s}(/ location{val}, / name{val})`,
		/* Q20 */ `// person{id s}(/(o) profile{id s}(/(s) @income))`,
	}
}

// SelfContainRow is one line of the Figure 4.14 (top) table: canonical model
// size and self-containment decision time for one XMark query pattern.
type SelfContainRow struct {
	Query     int
	Nodes     int
	ModelSize int
	Time      time.Duration
}

// XMarkSelfContainment reproduces Figure 4.14 (top): each of the 20 XMark
// query patterns is tested for containment in itself under the XMark
// summary.
func XMarkSelfContainment(s *summary.Summary) ([]SelfContainRow, error) {
	var out []SelfContainRow
	for i, src := range XMarkQueryPatternSources() {
		p, err := xam.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		model := containment.CanonicalModel(p, s)
		start := time.Now()
		ok, err := containment.Contained(p, p, s)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		if !ok {
			return nil, fmt.Errorf("query %d: not self-contained (%s)", i+1, p)
		}
		out = append(out, SelfContainRow{Query: i + 1, Nodes: p.Size(), ModelSize: len(model), Time: elapsed})
	}
	return out, nil
}

// SynthRow aggregates containment timings for one (pattern size, return
// arity) configuration: positive and negative decisions are separated as in
// Figure 4.14 (bottom).
type SynthRow struct {
	Nodes     int
	Returns   int
	Pairs     int
	Positive  int
	PosAvg    time.Duration
	NegAvg    time.Duration
	ModelAvg  float64 // average |mod_S(p)|
	POptional float64
	Oversized int // patterns dropped for exceeding maxSynthModel
}

// maxSynthModel bounds the canonical models of synthetic patterns admitted
// into the timing sets: a random all-wildcard pattern can reach |S|^|p|
// trees (§4.3.1's worst case), drowning the realistic measurements the
// figures are about. Dropped patterns are counted in SynthRow.Oversized —
// no silent truncation.
const maxSynthModel = 600

// SyntheticContainment reproduces Figures 4.14 (bottom) and 4.15: random
// satisfiable patterns of the given sizes and return arities, each set
// tested pairwise (p_i ⊆ p_j for j ≥ i).
func SyntheticContainment(s *summary.Summary, sizes, returns []int, perSet int, pOpt float64, seed int64) ([]SynthRow, error) {
	var out []SynthRow
	for _, n := range sizes {
		for _, r := range returns {
			cfg := patgen.Config{Nodes: n, Returns: r, POpt: pOpt}
			raw := patgen.GenerateSet(s, cfg, perSet*3, seed+int64(n*100+r))
			var pats []*xam.Pattern
			oversized := 0
			for _, p := range raw {
				if len(pats) == perSet {
					break
				}
				if _, truncated := containment.CanonicalModelBounded(p, s, maxSynthModel); truncated {
					oversized++
					continue
				}
				pats = append(pats, p)
			}
			row := SynthRow{Nodes: n, Returns: r, POptional: pOpt, Oversized: oversized}
			var posTotal, negTotal time.Duration
			var modelTotal int
			for _, p := range pats {
				modelTotal += len(containment.CanonicalModel(p, s))
			}
			for i := 0; i < len(pats); i++ {
				for j := i; j < len(pats); j++ {
					start := time.Now()
					ok, err := containment.Contained(pats[i], pats[j], s)
					elapsed := time.Since(start)
					if err != nil {
						return nil, err
					}
					row.Pairs++
					if ok {
						row.Positive++
						posTotal += elapsed
					} else {
						negTotal += elapsed
					}
				}
			}
			if row.Positive > 0 {
				row.PosAvg = posTotal / time.Duration(row.Positive)
			}
			if neg := row.Pairs - row.Positive; neg > 0 {
				row.NegAvg = negTotal / time.Duration(neg)
			}
			row.ModelAvg = float64(modelTotal) / float64(len(pats))
			out = append(out, row)
		}
	}
	return out, nil
}

// AblationRow is one line of the §4.6 optional-edge ablation.
type AblationRow struct {
	POptional float64
	AvgTime   time.Duration
	Pairs     int
}

// OptionalAblation reproduces the §4.6 observation that optional edges slow
// containment by roughly a factor of 2 over the conjunctive case. The same
// conjunctive pattern set is reused at every level; only the edge semantics
// flip from j to o, so structure is held fixed across configurations.
func OptionalAblation(s *summary.Summary, n, perSet int, seed int64) ([]AblationRow, error) {
	base := goodPatterns(s, patgen.Config{Nodes: n, Returns: 1, POpt: -1}, perSet, seed)
	var out []AblationRow
	for _, pOpt := range []float64{0, 0.5, 1.0} {
		pats := make([]*xam.Pattern, len(base))
		rng := rand.New(rand.NewSource(seed + int64(pOpt*10)))
		for i, p := range base {
			q := p.Clone()
			for _, node := range q.Nodes() {
				for _, e := range node.Edges {
					if e.Sem == xam.SemJoin && rng.Float64() < pOpt {
						e.Sem = xam.SemOuter
					}
				}
			}
			pats[i] = q
		}
		row := AblationRow{POptional: pOpt}
		var total time.Duration
		for i := 0; i < len(pats); i++ {
			for j := i; j < len(pats); j++ {
				start := time.Now()
				if _, err := containment.Contained(pats[i], pats[j], s); err != nil {
					return nil, err
				}
				total += time.Since(start)
				row.Pairs++
			}
		}
		row.AvgTime = total / time.Duration(row.Pairs)
		out = append(out, row)
	}
	return out, nil
}

// goodPatterns generates perSet patterns whose canonical models stay below
// the harness bound.
func goodPatterns(s *summary.Summary, cfg patgen.Config, perSet int, seed int64) []*xam.Pattern {
	raw := patgen.GenerateSet(s, cfg, perSet*3, seed)
	var out []*xam.Pattern
	for _, p := range raw {
		if len(out) == perSet {
			break
		}
		if _, truncated := containment.CanonicalModelBounded(p, s, maxSynthModel); truncated {
			continue
		}
		out = append(out, p)
	}
	return out
}

// MinimizeRow reports pattern minimization by S-contraction (§4.5).
type MinimizeRow struct {
	Nodes     int // configured size
	Patterns  int
	AvgBefore float64
	AvgAfter  float64
	Shrunk    int // patterns that lost at least one node
	AvgTime   time.Duration
}

// MinimizationStudy measures S-contraction minimization over random
// conjunctive patterns: how often summary constraints make nodes redundant,
// and what minimization costs.
func MinimizationStudy(s *summary.Summary, sizes []int, perSet int, seed int64) ([]MinimizeRow, error) {
	var out []MinimizeRow
	for _, n := range sizes {
		pats := goodPatterns(s, patgen.Config{Nodes: n, Returns: 1, POpt: -1, PPred: -1}, perSet, seed+int64(n))
		row := MinimizeRow{Nodes: n, Patterns: len(pats)}
		var totalBefore, totalAfter int
		var total time.Duration
		for _, p := range pats {
			totalBefore += p.Size()
			start := time.Now()
			min, err := containment.MinimizeByContraction(p, s)
			total += time.Since(start)
			if err != nil {
				return nil, err
			}
			if len(min) == 0 {
				return nil, fmt.Errorf("minimization lost pattern %s", p)
			}
			best := min[0]
			totalAfter += best.Size()
			if best.Size() < p.Size() {
				row.Shrunk++
			}
		}
		if len(pats) > 0 {
			row.AvgBefore = float64(totalBefore) / float64(len(pats))
			row.AvgAfter = float64(totalAfter) / float64(len(pats))
			row.AvgTime = total / time.Duration(len(pats))
		}
		out = append(out, row)
	}
	return out, nil
}
