package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"xamdb/internal/datagen"
	"xamdb/internal/engine"
)

// PredConfig sizes the predicate-absorption benchmark. The zero value is the
// CI smoke configuration.
type PredConfig struct {
	Items int // items in the synthetic document (default 100000)
	Iters int // measured repetitions per selectivity point (default 3)
}

func (c PredConfig) withDefaults() PredConfig {
	if c.Items <= 0 {
		c.Items = 100_000
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	return c
}

// PredRow is one selectivity point of the sweep: the same range-predicate
// query answered by direct base evaluation versus the predicate-absorbing
// view plan (σ_φ fused into the view scan).
type PredRow struct {
	SelectivityPct float64 `json:"selectivity_pct"`
	MatchRows      int     `json:"match_rows"`
	Query          string  `json:"query"`
	Plan           string  `json:"plan"` // the absorbing engine's chosen plan
	BaseP50NS      int64   `json:"base_p50_ns"`
	AbsorbedP50NS  int64   `json:"absorbed_p50_ns"`
	Speedup        float64 `json:"speedup"`
}

// PredReport is the xambench predicates export (BENCH_predicates.json): the
// selectivity sweep plus the absorbing engine's absorption counters — the
// zero-base-scan proof rides in BaseScans.
type PredReport struct {
	Experiment   string    `json:"experiment"`
	Dataset      string    `json:"dataset"`
	Items        int       `json:"items"`
	Rows         []PredRow `json:"rows"`
	BaseScans    int64     `json:"engine_base_scans"`
	PredAbsorbed int64     `json:"engine_pred_absorbed"`
	PredResidual int64     `json:"engine_pred_residual"`
}

// predView stores each item's num value and payload content side by side:
// wide enough that any range predicate on num is absorbed into a residual
// selection over this one extent, with no join at all.
const predView = `// item(/ num{val}, / payload{cont})`

// predSelectivities are the swept match fractions, 0.001% through 50%.
var predSelectivities = []float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 0.5}

// PredicateSweep measures predicate absorption end to end: a range predicate
// of dialed selectivity over the serial-items document, answered by (a) a
// view-less engine that must base-scan and (b) an engine whose value-storing
// view absorbs the predicate into a fused filtered scan. Both engines are
// warmed first (extents materialized, plan cache filled), so the comparison
// is the steady-state query path.
func PredicateSweep(ctx context.Context, cfg PredConfig) (*PredReport, error) {
	cfg = cfg.withDefaults()
	doc := datagen.SerialItems(cfg.Items)

	baseEng := engine.New()
	baseEng.AddDocument(doc)

	absEng := engine.New()
	absEng.UsePhysical = true
	absEng.AddDocument(doc)
	if err := absEng.RegisterView(doc.Name, "v_item", predView); err != nil {
		return nil, err
	}

	rep := &PredReport{Experiment: "predicates", Dataset: doc.Name, Items: cfg.Items}
	for _, sel := range predSelectivities {
		k := int(sel * float64(cfg.Items))
		if k < 1 {
			k = 1
		}
		q := fmt.Sprintf(`doc(%q)//item[num < %q]/payload`, doc.Name, fmt.Sprint(k))
		row := PredRow{
			SelectivityPct: 100 * float64(k) / float64(cfg.Items),
			MatchRows:      k,
			Query:          q,
		}

		basP50, err := warmP50(ctx, baseEng, q, cfg.Iters, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: predicates base %q: %w", q, err)
		}
		row.BaseP50NS = basP50
		absP50, err := warmP50(ctx, absEng, q, cfg.Iters, &row.Plan)
		if err != nil {
			return nil, fmt.Errorf("bench: predicates absorbed %q: %w", q, err)
		}
		row.AbsorbedP50NS = absP50
		if absP50 > 0 {
			row.Speedup = float64(basP50) / float64(absP50)
		}
		rep.Rows = append(rep.Rows, row)
	}

	snap := absEng.Metrics.Snapshot()
	rep.BaseScans = snap.Counters[engine.MetricBaseScans]
	rep.PredAbsorbed = snap.Counters[engine.MetricPredAbsorbed]
	rep.PredResidual = snap.Counters[engine.MetricPredResidual]
	return rep, nil
}

// warmP50 warms the engine on q (materializing extents and filling the plan
// cache), then reports the p50 of iters*3 measured runs. With planOut set,
// the first run's chosen plan is recorded.
func warmP50(ctx context.Context, e *engine.Engine, q string, iters int, planOut *string) (int64, error) {
	for i := 0; i < 2; i++ {
		_, qrep, err := e.QueryContext(ctx, q)
		if err != nil {
			return 0, err
		}
		if i == 0 && planOut != nil && len(qrep.Plans) > 0 {
			*planOut = qrep.Plans[0]
		}
	}
	samples := iters * 3
	lats := make([]int64, samples)
	for i := range lats {
		start := time.Now()
		if _, _, err := e.QueryContext(ctx, q); err != nil {
			return 0, err
		}
		lats[i] = time.Since(start).Nanoseconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], nil
}

// WriteJSON writes the report as indented JSON (the BENCH_*.json format).
func (r *PredReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
