package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"xamdb/internal/datagen"
	"xamdb/internal/engine"
)

// VectorConfig sizes the row-vs-batch execution ablation. The zero value is
// the CI smoke configuration.
type VectorConfig struct {
	Items int // items in the synthetic document (default 100000)
	Iters int // measured repetitions per query (default 3)
}

func (c VectorConfig) withDefaults() VectorConfig {
	if c.Items <= 0 {
		c.Items = 100_000
	}
	if c.Iters <= 0 {
		c.Iters = 3
	}
	return c
}

// VectorRow is one query of the ablation: identical plan shape executed by
// the row iterators versus the vectorized batch iterators, timed on the
// execute phase alone (plan cache warm, extents materialized — parse and
// rewrite excluded).
type VectorRow struct {
	Query        string  `json:"query"`
	Plan         string  `json:"plan"`
	RowExecP50NS int64   `json:"row_exec_p50_ns"`
	BatchP50NS   int64   `json:"batch_exec_p50_ns"`
	Speedup      float64 `json:"speedup"`
}

// VectorReport is the xambench vectorized export (BENCH_vectorized.json).
// SpeedupP50 is the median per-query speedup; BatchFallbacks counts batch
// plans that had to bridge through the row engine — the CI smoke asserts it
// stays zero on this workload.
type VectorReport struct {
	Experiment     string      `json:"experiment"`
	Dataset        string      `json:"dataset"`
	Items          int         `json:"items"`
	Rows           []VectorRow `json:"rows"`
	SpeedupP50     float64     `json:"speedup_p50"`
	Batches        int64       `json:"engine_batches"`
	BatchFallbacks int64       `json:"engine_batch_fallbacks"`
}

// VectorizedAblation measures the vectorized execution path end to end: the
// same scan-heavy queries over the serial-items document answered by two
// physical engines that differ only in UseBatch. Both share the predView
// value-storing view, so the workload exercises the fused σφ filtered scan,
// projection, and the structural-join path.
func VectorizedAblation(ctx context.Context, cfg VectorConfig) (*VectorReport, error) {
	cfg = cfg.withDefaults()
	doc := datagen.SerialItems(cfg.Items)

	mkEngine := func(batch bool) (*engine.Engine, error) {
		e := engine.New()
		e.UsePhysical = true
		e.UseBatch = batch
		e.AddDocument(doc)
		if err := e.RegisterView(doc.Name, "v_item", predView); err != nil {
			return nil, err
		}
		return e, nil
	}
	rowEng, err := mkEngine(false)
	if err != nil {
		return nil, err
	}
	batchEng, err := mkEngine(true)
	if err != nil {
		return nil, err
	}

	// Scan-heavy shapes over the one extent: fused filtered scans swept
	// across selectivities (every query scans all rows; the output size is
	// what varies) plus the unfiltered scan + projection of everything.
	queries := []string{
		fmt.Sprintf(`doc(%q)//item[num < %q]/payload`, doc.Name, fmt.Sprint(cfg.Items/1000)),
		fmt.Sprintf(`doc(%q)//item[num < %q]/payload`, doc.Name, fmt.Sprint(cfg.Items/100)),
		fmt.Sprintf(`doc(%q)//item[num < %q]/payload`, doc.Name, fmt.Sprint(cfg.Items/10)),
		fmt.Sprintf(`doc(%q)//item[num < %q]/payload`, doc.Name, fmt.Sprint(cfg.Items/2)),
		fmt.Sprintf(`doc(%q)//item/payload`, doc.Name),
	}

	rep := &VectorReport{Experiment: "vectorized", Dataset: doc.Name, Items: cfg.Items}
	for _, q := range queries {
		row := VectorRow{Query: q}
		rowP50, err := warmExecP50(ctx, rowEng, q, cfg.Iters, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: vectorized row %q: %w", q, err)
		}
		row.RowExecP50NS = rowP50
		batchP50, err := warmExecP50(ctx, batchEng, q, cfg.Iters, &row.Plan)
		if err != nil {
			return nil, fmt.Errorf("bench: vectorized batch %q: %w", q, err)
		}
		row.BatchP50NS = batchP50
		if batchP50 > 0 {
			row.Speedup = float64(rowP50) / float64(batchP50)
		}
		rep.Rows = append(rep.Rows, row)
	}

	speedups := make([]float64, len(rep.Rows))
	for i, r := range rep.Rows {
		speedups[i] = r.Speedup
	}
	sort.Float64s(speedups)
	rep.SpeedupP50 = speedups[len(speedups)/2]

	snap := batchEng.Metrics.Snapshot()
	rep.Batches = snap.Counters[engine.MetricBatches]
	rep.BatchFallbacks = snap.Counters[engine.MetricBatchFallbacks]
	return rep, nil
}

// warmExecP50 warms the engine on q (materializing extents and filling the
// plan cache), then reports the p50 of the execute-phase span over iters*3
// measured runs — isolating iterator throughput from parse/rewrite time.
func warmExecP50(ctx context.Context, e *engine.Engine, q string, iters int, planOut *string) (int64, error) {
	for i := 0; i < 2; i++ {
		_, qrep, err := e.QueryContext(ctx, q)
		if err != nil {
			return 0, err
		}
		if i == 0 && planOut != nil && len(qrep.Plans) > 0 {
			*planOut = qrep.Plans[0]
		}
	}
	// Collect the garbage the warm-up (and the previously measured engine)
	// left behind so one engine's allocation debt is not billed to the
	// other's samples.
	runtime.GC()
	samples := iters * 3
	lats := make([]int64, 0, samples)
	for i := 0; i < samples; i++ {
		_, qrep, err := e.QueryContext(ctx, q)
		if err != nil {
			return 0, err
		}
		d, ok := qrep.Trace.PhaseTotals()["execute"]
		if !ok {
			return 0, fmt.Errorf("bench: query %q produced no execute span", q)
		}
		lats = append(lats, d.Nanoseconds())
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2], nil
}

// WriteJSON writes the report as indented JSON (the BENCH_*.json format).
func (r *VectorReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
