package bench

import "testing"

func TestSummaryStatsShape(t *testing.T) {
	rows := SummaryStats()
	if len(rows) != 5 {
		t.Fatalf("rows: %d", len(rows))
	}
	byName := map[string]SummaryRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Paths == 0 || r.Nodes == 0 || r.StrongEdge < r.OneToOne {
			t.Errorf("bad row %+v", r)
		}
	}
	// Figure 4.13's ordering: Shakespeare < Nasa < SwissProt < XMark;
	// summaries are small relative to documents.
	if !(byName["Shakespeare"].Paths < byName["Nasa"].Paths &&
		byName["Nasa"].Paths < byName["SwissProt"].Paths &&
		byName["SwissProt"].Paths < byName["XMark"].Paths) {
		t.Errorf("summary size ordering violated: %+v", rows)
	}
	for _, r := range rows {
		if r.Paths >= r.Nodes {
			t.Errorf("%s: summary not smaller than document", r.Name)
		}
	}
}

func TestXMarkQueriesParseAndSelfContain(t *testing.T) {
	d := XMarkDataset()
	rows, err := XMarkSelfContainment(d.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("rows: %d", len(rows))
	}
	// Query 7 (unrelated branches) must have the largest canonical model,
	// reproducing the thesis's outlier.
	max, maxQ := 0, 0
	for _, r := range rows {
		if r.ModelSize == 0 {
			t.Errorf("query %d has empty model", r.Query)
		}
		if r.ModelSize > max {
			max, maxQ = r.ModelSize, r.Query
		}
	}
	if maxQ != 7 {
		t.Errorf("largest model is query %d (%d trees), want query 7", maxQ, max)
	}
}

func TestSyntheticContainmentSmall(t *testing.T) {
	d := DBLPDataset()
	rows, err := SyntheticContainment(d.Summary, []int{3, 5}, []int{1}, 6, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Pairs != 21 { // 6+5+...+1
			t.Errorf("pairs: %d", r.Pairs)
		}
		if r.Positive == 0 { // at least the self-containments
			t.Errorf("no positive cases in %+v", r)
		}
	}
}

func TestOptionalAblationSmall(t *testing.T) {
	d := DBLPDataset()
	rows, err := OptionalAblation(d.Summary, 5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].POptional != 0 || rows[2].POptional != 1 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestRewriteScalingSmall(t *testing.T) {
	d := DBLPDataset()
	rows, err := RewriteScaling(d, []int{5, 10}, []int{3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
}

func TestStorageQEPs(t *testing.T) {
	rows, err := StorageQEPs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The headline shapes: view scan beats joins, content store beats
	// recomposition, indexes beat scans — on result-equivalent work.
	byVariantPrefix := func(prefix string) QEPRow {
		for _, r := range rows {
			if len(r.Variant) >= len(prefix) && r.Variant[:len(prefix)] == prefix {
				return r
			}
		}
		t.Fatalf("variant %q missing", prefix)
		return QEPRow{}
	}
	q10 := byVariantPrefix("QEP10")
	q11 := byVariantPrefix("QEP11")
	if q10.Tuples != q11.Tuples {
		t.Errorf("index and scan disagree: %d vs %d", q10.Tuples, q11.Tuples)
	}
	q12 := byVariantPrefix("QEP12")
	q13 := byVariantPrefix("QEP13")
	if q12.Tuples != q13.Tuples {
		t.Errorf("FTI and contains scan disagree: %d vs %d", q12.Tuples, q13.Tuples)
	}
}

func TestExtractionStudy(t *testing.T) {
	rows, err := ExtractionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The Figure 3.1-style query: 2 maximal patterns spanning 3 blocks,
	// versus strictly more XPath single-return views.
	if rows[0].Patterns != 2 {
		t.Errorf("maximal patterns: %d, want 2", rows[0].Patterns)
	}
	if rows[0].XPathViews <= rows[0].Patterns {
		t.Errorf("baseline should need more views: %d vs %d", rows[0].XPathViews, rows[0].Patterns)
	}
}

func TestContentVsRecompositionEquivalent(t *testing.T) {
	rows, err := StorageQEPs()
	if err != nil {
		t.Fatal(err)
	}
	var q8, q9 QEPRow
	for _, r := range rows {
		switch {
		case len(r.Variant) >= 4 && r.Variant[:4] == "QEP8":
			q8 = r
		case len(r.Variant) >= 4 && r.Variant[:4] == "QEP9":
			q9 = r
		}
	}
	if q8.Tuples != q9.Tuples || q8.Bytes != q9.Bytes {
		t.Fatalf("QEP8/QEP9 not result-equivalent: %+v vs %+v", q8, q9)
	}
}
