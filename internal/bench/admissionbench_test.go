package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestAdmissionLoad is the smoke test for the admission experiment: a short
// run must reconcile exactly, shed explicitly, and round-trip its JSON.
func TestAdmissionLoad(t *testing.T) {
	rep, err := AdmissionLoad(context.Background(), AdmissionConfig{
		ClosedClients:  4,
		ClosedDuration: 150 * time.Millisecond,
		OpenDuration:   250 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("invariants: %v (failures %v)", err, rep.Failures)
	}
	if rep.Stats.Submitted == 0 || rep.Stats.Submitted != rep.Stats.Accounted() {
		t.Fatalf("accounting: %+v", rep.Stats)
	}
	if rep.Closed.QPS <= 0 || rep.Open.Sent == 0 {
		t.Fatalf("load sections empty: closed=%+v open=%+v", rep.Closed, rep.Open)
	}
	if len(rep.Failures) != 0 {
		t.Fatalf("failures: %v", rep.Failures)
	}

	path := filepath.Join(t.TempDir(), "BENCH_admission.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back AdmissionReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "admission" || back.Stats.Submitted != rep.Stats.Submitted {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
}
